#ifndef DMRPC_DMNET_SERVER_H_
#define DMRPC_DMNET_SERVER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "dm/page_pool.h"
#include "dm/va_allocator.h"
#include "mem/memory_model.h"
#include "net/fabric.h"
#include "obs/metrics.h"
#include "rpc/rpc.h"
#include "sim/sync.h"

namespace dmrpc::dmnet {

/// Tuning of a DM server (§V-A).
struct DmServerConfig {
  uint32_t page_size = 4096;
  uint32_t num_frames = 65536;  // 256 MiB of pinned pages by default
  /// Worker cores serving DM requests (Fig. 7 uses 1).
  int cores = 1;
  /// Per-request fixed CPU cost (argument parsing, dispatch).
  TimeNs op_cpu_ns = 100;
  /// Software address translation: one hash lookup per page. The paper
  /// reports translation at 0.17% of total DM access time, where "total"
  /// includes the network round trip; against server-side handler time
  /// alone the fraction is a few percent (see abl_translation_cost).
  TimeNs hash_lookup_ns = 15;
  /// Page-fault service: pop a frame from the FIFO and install the PTE.
  TimeNs fault_ns = 150;
  /// VA-tree allocate/free.
  TimeNs tree_op_ns = 120;
  /// Reference-count read/update.
  TimeNs refcount_op_ns = 15;
  /// When true, CreateRef eagerly copies the pages instead of sharing
  /// them copy-on-write -- the paper's "-copy" baseline (Fig. 7).
  bool eager_copy = false;
  /// Models the paper's proposed future-work optimization (§V-A2): the
  /// OS is modified so the MMU translates DM virtual addresses straight
  /// to physical addresses, skipping the software hash-table lookup.
  /// Bookkeeping still happens (correctness is unchanged); only the
  /// per-page lookup CPU cost disappears.
  bool mmu_direct_translation = false;
  /// VA span handed to each registered process.
  uint64_t va_span_per_proc = uint64_t{1} << 36;  // 64 GiB

  mem::MemoryConfig memory;
};

/// Operation counters of one DM server.
struct DmServerStats {
  uint64_t allocs = 0;
  uint64_t frees = 0;
  uint64_t create_refs = 0;
  uint64_t map_refs = 0;
  uint64_t release_refs = 0;
  uint64_t put_refs = 0;
  uint64_t fetch_refs = 0;
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t page_faults = 0;
  uint64_t cow_copies = 0;
  uint64_t eager_copied_pages = 0;
  /// Crash-recovery sweeps (ReclaimPeer calls) and the frames they
  /// returned to the free list.
  uint64_t peer_reclaims = 0;
  uint64_t frames_reclaimed = 0;
  /// Virtual ns spent in software address translation (for the 0.17%
  /// claim in §V-A2).
  TimeNs translation_ns = 0;
  /// Virtual ns spent serving DM accesses (rread/rwrite handler time).
  TimeNs access_ns = 0;
};

/// A disaggregated-memory server: pinned page pool managed by a Page
/// Manager (FIFO free list, per-page refcounts, VA allocation trees,
/// create_ref key map) fronted by an Address Translator (one global
/// in-memory hash table mapping DM virtual pages to pinned frames).
/// Serves DmReqType RPCs on `port` of host `node`.
class DmServer {
 public:
  DmServer(net::Fabric* fabric, net::NodeId node, net::Port port,
           DmServerConfig cfg = DmServerConfig(),
           /// Base of the per-process VA partitions this server hands
           /// out; lets multiple servers hand out disjoint DM VAs.
           uint64_t va_partition_base = uint64_t{1} << 44);

  DmServer(const DmServer&) = delete;
  DmServer& operator=(const DmServer&) = delete;

  net::NodeId node() const { return node_; }
  net::Port port() const { return port_; }
  const DmServerConfig& config() const { return cfg_; }
  const DmServerStats& stats() const { return stats_; }
  const mem::BandwidthMeter& memory_meter() const { return meter_; }
  mem::BandwidthMeter& memory_meter() { return meter_; }
  const dm::PagePool& pool() const { return pool_; }
  rpc::Rpc* rpc() { return rpc_.get(); }

  /// Resets traffic counters (between benchmark phases).
  void ResetStats() {
    stats_ = DmServerStats();
    meter_.Reset();
  }

  /// Crash recovery: drops every resource owned by `peer`'s current
  /// incarnation -- lease-tracked Ref shares, then each of its registered
  /// processes (PTE shares and VA trees) -- returning now-unreferenced
  /// frames to the free list, and bumps the peer's epoch so requests
  /// still in flight from the dead incarnation resolve cleanly (unknown
  /// pid / unknown ref key) instead of touching reclaimed state. Called
  /// by the fault layer's crash listener and by chaos-harness retirement
  /// (a clean process exit is the same sweep).
  void ReclaimPeer(net::NodeId peer);

  /// Test hook: when set, ReleaseRef forgets the Ref entry WITHOUT
  /// dropping its page references -- a deliberate leak the chaos
  /// harness's conservation invariant must catch (negative test).
  void set_debug_leak_on_release(bool v) { debug_leak_on_release_ = v; }

 private:
  struct ProcState {
    std::unique_ptr<dm::VaAllocator> va;
    /// Node that registered this process (crash-reclamation scope).
    net::NodeId owner = net::kInvalidNode;
  };
  struct RefEntry {
    std::vector<dm::FrameId> frames;
    uint64_t size = 0;
    /// Lease holding this entry's page shares (owner node + epoch).
    dm::LeaseId lease = 0;
  };

  // Handlers (one per DmReqType).
  sim::Task<rpc::MsgBuffer> HandleRegister(rpc::ReqContext ctx,
                                           rpc::MsgBuffer req);
  sim::Task<rpc::MsgBuffer> HandleAlloc(rpc::ReqContext ctx,
                                        rpc::MsgBuffer req);
  sim::Task<rpc::MsgBuffer> HandleFree(rpc::ReqContext ctx,
                                       rpc::MsgBuffer req);
  sim::Task<rpc::MsgBuffer> HandleCreateRef(rpc::ReqContext ctx,
                                            rpc::MsgBuffer req);
  sim::Task<rpc::MsgBuffer> HandleMapRef(rpc::ReqContext ctx,
                                         rpc::MsgBuffer req);
  sim::Task<rpc::MsgBuffer> HandleReleaseRef(rpc::ReqContext ctx,
                                             rpc::MsgBuffer req);
  sim::Task<rpc::MsgBuffer> HandleWrite(rpc::ReqContext ctx,
                                        rpc::MsgBuffer req);
  sim::Task<rpc::MsgBuffer> HandleRead(rpc::ReqContext ctx,
                                       rpc::MsgBuffer req);
  sim::Task<rpc::MsgBuffer> HandlePutRef(rpc::ReqContext ctx,
                                         rpc::MsgBuffer req);
  sim::Task<rpc::MsgBuffer> HandleWriteShared(rpc::ReqContext ctx,
                                              rpc::MsgBuffer req);
  sim::Task<rpc::MsgBuffer> HandleFetchRef(rpc::ReqContext ctx,
                                           rpc::MsgBuffer req);
  sim::Task<rpc::MsgBuffer> HandleWriteRef(rpc::ReqContext ctx,
                                           rpc::MsgBuffer req);

  /// Translation key for the global hash table: pid in the high 32 bits,
  /// virtual page number (relative to the partition base) in the low 32.
  uint64_t PteKey(uint32_t pid, dm::RemoteAddr va) const;

  /// Looks up (and charges the cost of) a translation. Returns
  /// kInvalidFrame when unmapped.
  dm::FrameId Translate(uint32_t pid, dm::RemoteAddr page_va);

  /// CPU cost of one software translation (0 under MMU-direct mode).
  TimeNs TranslateCost() const;

  /// Faults in a fresh zeroed frame for an unmapped page.
  StatusOr<dm::FrameId> FaultIn(uint32_t pid, dm::RemoteAddr page_va);

  ProcState* FindProc(uint32_t pid);

  /// Lease id of `node`'s current incarnation.
  dm::LeaseId CurrentLease(net::NodeId node);

  sim::Simulation* sim_;
  net::NodeId node_;
  net::Port port_;
  DmServerConfig cfg_;
  uint64_t va_partition_base_;

  std::unique_ptr<rpc::Rpc> rpc_;
  dm::PagePool pool_;
  sim::Semaphore cores_;

  uint32_t next_pid_ = 1;
  uint64_t next_ref_key_ = 1;
  std::unordered_map<uint32_t, ProcState> procs_;
  /// The Address Translator's global hash table.
  std::unordered_map<uint64_t, dm::FrameId> pte_;
  /// The Page Manager's create_ref key map.
  std::unordered_map<uint64_t, RefEntry> refs_;
  /// Incarnation number per client node; bumped by ReclaimPeer.
  std::map<net::NodeId, uint32_t> peer_epochs_;
  bool debug_leak_on_release_ = false;

  mem::BandwidthMeter meter_;
  DmServerStats stats_;

  // Fleet-wide registry aggregates (all DM servers of a simulation share
  // these; per-server detail stays in stats_).
  obs::Counter* m_faults_;
  obs::Counter* m_cow_copies_;
  obs::Counter* m_eager_copies_;
  obs::Counter* m_fetch_refs_;
  obs::Counter* m_release_refs_;
  obs::Counter* m_peer_reclaims_;
};

}  // namespace dmrpc::dmnet

#endif  // DMRPC_DMNET_SERVER_H_
