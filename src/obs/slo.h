#ifndef DMRPC_OBS_SLO_H_
#define DMRPC_OBS_SLO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"
#include "obs/metrics.h"
#include "obs/timeline.h"

namespace dmrpc::obs {

class Tracer;

/// One service-level objective evaluated per timeline window.
///
/// Two shapes:
///  - kLatency: samples of `timer` are good when <= target_ns. The bad
///    count per window comes from the window's diffed quantile sketch
///    (Histogram::CountAtOrBelow), so it carries the sketch's ~3%
///    bucket error at the threshold.
///  - kRatio: `bad_counter`'s window delta over `total_counter`'s window
///    delta (drop rate over forwarded packets, aborts over begun txns).
///
/// The burn rate is the SRE-book quantity: (bad fraction) / (error
/// budget). Burning at exactly 1.0 exhausts the budget at the end of the
/// objective horizon; a window whose burn reaches `burn_threshold`
/// records a breach.
struct SloObjective {
  enum class Kind { kLatency, kRatio };

  std::string name;  // registry/trace suffix, e.g. "rpc_call_p99"
  Kind kind = Kind::kLatency;

  // kLatency:
  std::string timer;      // e.g. "rpc.call"
  TimeNs target_ns = 0;   // good when sample <= target

  // kRatio:
  std::string bad_counter;    // e.g. "net.switch.dropped"
  std::string total_counter;  // e.g. "net.switch.forwarded"

  /// Error budget: the tolerated bad fraction (0.001 = 99.9% objective).
  double budget = 0.001;
  /// Burn rate at or above which a window counts as a breach.
  double burn_threshold = 1.0;

  static SloObjective Latency(std::string name, std::string timer,
                              TimeNs target_ns, double budget = 0.001,
                              double burn_threshold = 1.0);
  static SloObjective Ratio(std::string name, std::string bad_counter,
                            std::string total_counter, double budget = 0.001,
                            double burn_threshold = 1.0);
};

/// One breach, kept for reporting (benches summarize these per run).
struct SloBreach {
  std::string name;
  TimeNs window_start = 0;
  TimeNs window_end = 0;
  uint64_t bad = 0;
  uint64_t total = 0;
  int64_t burn_milli = 0;
};

/// Evaluates configured objectives against each sampled timeline window
/// and emits burn-rate breach events into the metrics registry (a
/// lazily-registered `slo.<name>.breaches` counter, mirroring the
/// `obs.trace_dropped` appears-only-when-nonzero policy) and into the
/// trace as instant records on the "slo" category, so breaches line up
/// with spans on the Perfetto timeline.
class SloMonitor {
 public:
  void AddObjective(SloObjective obj);
  bool armed() const { return !objectives_.empty(); }
  const std::vector<SloObjective>& objectives() const { return objectives_; }

  /// Evaluates every objective against `window` (whose counter/timer
  /// deltas and sketches are already computed), appends per-objective
  /// verdicts to window->slo, and records breaches. `window_sketches`
  /// maps timer name -> the window's diffed Histogram for latency
  /// objectives. `reg` and `tracer` may be null (pure evaluation).
  void Evaluate(TimelineWindow* window,
                const std::map<std::string, Histogram>& window_sketches,
                MetricsRegistry* reg, Tracer* tracer);

  uint64_t evaluations() const { return evaluations_; }
  const std::vector<SloBreach>& breaches() const { return breaches_; }
  void Clear() {
    breaches_.clear();
    evaluations_ = 0;
  }

 private:
  std::vector<SloObjective> objectives_;
  std::vector<SloBreach> breaches_;
  uint64_t evaluations_ = 0;
};

}  // namespace dmrpc::obs

#endif  // DMRPC_OBS_SLO_H_
