#include "obs/trace.h"

#include <cinttypes>
#include <cstdio>

namespace dmrpc::obs {

namespace {

void AppendEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
}

/// Renders the common fields of one JSONL record.
std::string JsonlRecord(const TraceRecord& r, const char* ph) {
  std::string line = "{\"ph\":\"";
  line += ph;
  line += "\",\"ts\":" + std::to_string(r.time);
  if (r.id != 0) line += ",\"id\":" + std::to_string(r.id);
  line += ",\"track\":" + std::to_string(r.track);
  line += ",\"depth\":" + std::to_string(r.depth);
  line += ",\"cat\":\"";
  AppendEscaped(&line, r.cat);
  line += "\",\"name\":\"";
  AppendEscaped(&line, r.name);
  line += "\"";
  if (!r.args.empty()) line += ",\"args\":" + r.args;
  line += "}";
  return line;
}

}  // namespace

uint64_t Tracer::BeginSpan(std::string cat, std::string name, TimeNs now,
                           uint32_t track, std::string args) {
  if (!enabled_) return 0;
  if (Full()) {
    ++dropped_;
    return 0;
  }
  uint64_t id = next_id_++;
  uint32_t& depth = depth_by_track_[track];
  TraceRecord rec;
  rec.phase = TracePhase::kSpanBegin;
  rec.time = now;
  rec.id = id;
  rec.track = track;
  rec.depth = depth;
  rec.cat = std::move(cat);
  rec.name = std::move(name);
  rec.args = std::move(args);
  open_.emplace(id, records_.size());
  records_.push_back(std::move(rec));
  ++depth;
  return id;
}

void Tracer::EndSpan(uint64_t id, TimeNs now) {
  if (id == 0) return;  // disabled or dropped at begin
  auto it = open_.find(id);
  if (it == open_.end()) return;  // already ended, or Clear()ed
  const TraceRecord& begin = records_[it->second];
  TraceRecord rec;
  rec.phase = TracePhase::kSpanEnd;
  rec.time = now;
  rec.id = id;
  rec.track = begin.track;
  rec.depth = begin.depth;
  rec.cat = begin.cat;
  rec.name = begin.name;
  open_.erase(it);
  auto d = depth_by_track_.find(rec.track);
  if (d != depth_by_track_.end() && d->second > 0) --d->second;
  if (Full()) {
    // Record the end even at the limit so no span leaks open; only new
    // begins/instants are shed.
    ++dropped_;
  }
  records_.push_back(std::move(rec));
}

void Tracer::Instant(std::string cat, std::string name, TimeNs now,
                     uint32_t track, std::string args) {
  if (!enabled_) return;
  if (Full()) {
    ++dropped_;
    return;
  }
  TraceRecord rec;
  rec.time = now;
  rec.track = track;
  auto d = depth_by_track_.find(track);
  rec.depth = d == depth_by_track_.end() ? 0 : d->second;
  rec.cat = std::move(cat);
  rec.name = std::move(name);
  rec.args = std::move(args);
  records_.push_back(std::move(rec));
}

uint32_t Tracer::OpenDepth(uint32_t track) const {
  auto it = depth_by_track_.find(track);
  return it == depth_by_track_.end() ? 0 : it->second;
}

void Tracer::Clear() {
  records_.clear();
  open_.clear();
  depth_by_track_.clear();
  dropped_ = 0;
}

void Tracer::WriteJsonLines(std::ostream& os) const {
  for (const TraceRecord& r : records_) {
    const char* ph = r.phase == TracePhase::kSpanBegin  ? "B"
                     : r.phase == TracePhase::kSpanEnd ? "E"
                                                       : "i";
    os << JsonlRecord(r, ph) << "\n";
  }
}

void Tracer::WriteChromeTrace(std::ostream& os) const {
  // Pair span ends with their begins so spans can be emitted as complete
  // ("X") events, which viewers render without needing balanced B/E
  // streams per thread.
  std::unordered_map<uint64_t, TimeNs> end_time;
  TimeNs last = 0;
  for (const TraceRecord& r : records_) {
    if (r.time > last) last = r.time;
    if (r.phase == TracePhase::kSpanEnd) end_time.emplace(r.id, r.time);
  }

  os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  char buf[64];
  for (const TraceRecord& r : records_) {
    if (r.phase == TracePhase::kSpanEnd) continue;  // folded into "X"
    if (!first) os << ",";
    first = false;
    std::string ev = "{\"pid\":0,\"tid\":" + std::to_string(r.track);
    // Chrome timestamps are microseconds; keep ns precision fractionally.
    std::snprintf(buf, sizeof(buf), "%" PRId64 ".%03d", r.time / 1000,
                  static_cast<int>(r.time % 1000));
    ev += ",\"ts\":";
    ev += buf;
    if (r.phase == TracePhase::kSpanBegin) {
      auto it = end_time.find(r.id);
      // A span still open at export time extends to the last event.
      TimeNs dur = (it != end_time.end() ? it->second : last) - r.time;
      std::snprintf(buf, sizeof(buf), "%" PRId64 ".%03d", dur / 1000,
                    static_cast<int>(dur % 1000));
      ev += ",\"ph\":\"X\",\"dur\":";
      ev += buf;
    } else {
      ev += ",\"ph\":\"i\",\"s\":\"t\"";
    }
    ev += ",\"cat\":\"";
    AppendEscaped(&ev, r.cat);
    ev += "\",\"name\":\"";
    AppendEscaped(&ev, r.name);
    ev += "\"";
    if (!r.args.empty()) ev += ",\"args\":" + r.args;
    ev += "}";
    os << ev;
  }
  os << "]}\n";
}

}  // namespace dmrpc::obs
