#include "obs/trace.h"

#include <cinttypes>
#include <cstdio>

namespace dmrpc::obs {

namespace {

/// Full JSON string escaping: quote, backslash, and control characters
/// (a raw newline or tab inside a span name would otherwise produce an
/// unparseable trace file).
void AppendEscaped(std::string* out, const std::string& s) {
  char buf[8];
  for (char c : s) {
    unsigned char uc = static_cast<unsigned char>(c);
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (uc < 0x20) {
          std::snprintf(buf, sizeof(buf), "\\u%04x", uc);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
}

/// Structural check that `s` is one balanced JSON object, string-aware
/// (braces inside string literals don't count). Exporters emit args
/// verbatim only when this holds; anything else is wrapped as an escaped
/// string so a bad caller cannot corrupt the whole trace file.
bool LooksLikeJsonObject(const std::string& s) {
  if (s.empty() || s.front() != '{') return false;
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // raw control char inside a string literal
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      ++depth;
    } else if (c == '}' || c == ']') {
      if (--depth < 0) return false;
      if (depth == 0) return i + 1 == s.size();  // must end exactly here
    }
  }
  return false;
}

/// Emits `,"args":...` -- the args object verbatim when well-formed,
/// otherwise wrapped so the output stays valid JSON.
void AppendArgs(std::string* out, const std::string& args) {
  if (args.empty()) return;
  *out += ",\"args\":";
  if (LooksLikeJsonObject(args)) {
    *out += args;
  } else {
    *out += "{\"invalid_args\":\"";
    AppendEscaped(out, args);
    *out += "\"}";
  }
}

/// Renders the common fields of one JSONL record.
std::string JsonlRecord(const TraceRecord& r, const char* ph) {
  std::string line = "{\"ph\":\"";
  line += ph;
  line += "\",\"ts\":" + std::to_string(r.time);
  if (r.id != 0) line += ",\"id\":" + std::to_string(r.id);
  if (r.trace_id != 0) line += ",\"trace\":" + std::to_string(r.trace_id);
  if (r.parent_id != 0) line += ",\"parent\":" + std::to_string(r.parent_id);
  line += ",\"track\":" + std::to_string(r.track);
  line += ",\"depth\":" + std::to_string(r.depth);
  line += ",\"cat\":\"";
  AppendEscaped(&line, r.cat);
  line += "\",\"name\":\"";
  AppendEscaped(&line, r.name);
  line += "\"";
  AppendArgs(&line, r.args);
  line += "}";
  return line;
}

/// Splices `key:value` into an args object string ("" means no object
/// yet), keeping it a valid object.
void MergeArg(std::string* args, const std::string& key, uint64_t value) {
  std::string kv = "\"" + key + "\":" + std::to_string(value);
  if (args->empty()) {
    *args = "{" + kv + "}";
  } else if (LooksLikeJsonObject(*args)) {
    args->insert(args->size() - 1,
                 (*args == "{}" ? kv : "," + kv));
  }
  // Malformed caller-supplied args: leave untouched; the exporter wraps
  // them anyway.
}

}  // namespace

uint64_t Tracer::BeginSpanRecord(uint64_t trace_id, uint64_t parent_id,
                                 std::string cat, std::string name,
                                 TimeNs now, uint32_t track,
                                 std::string args) {
  if (!enabled_) return 0;
  if (Full()) {
    ++dropped_;
    return 0;
  }
  uint64_t id = next_id_++;
  uint32_t& depth = depth_by_track_[track];
  TraceRecord rec;
  rec.phase = TracePhase::kSpanBegin;
  rec.time = now;
  rec.id = id;
  rec.trace_id = trace_id;
  rec.parent_id = parent_id;
  rec.track = track;
  rec.depth = depth;
  rec.cat = std::move(cat);
  rec.name = std::move(name);
  rec.args = std::move(args);
  open_.emplace(id, records_.size());
  records_.push_back(std::move(rec));
  ++depth;
  return id;
}

uint64_t Tracer::BeginSpan(std::string cat, std::string name, TimeNs now,
                           uint32_t track, std::string args) {
  return BeginSpanRecord(0, 0, std::move(cat), std::move(name), now, track,
                         std::move(args));
}

uint64_t Tracer::BeginSpan(const TraceContext& ctx, std::string cat,
                           std::string name, TimeNs now, uint32_t track,
                           std::string args) {
  return BeginSpanRecord(ctx.trace_id, ctx.span_id, std::move(cat),
                         std::move(name), now, track, std::move(args));
}

void Tracer::EndSpan(uint64_t id, TimeNs now) {
  if (id == 0) return;  // disabled or dropped at begin
  auto it = open_.find(id);
  if (it == open_.end()) return;  // already ended, or Clear()ed
  TraceRecord& begin = records_[it->second];
  auto copied = open_copied_.find(id);
  if (copied != open_copied_.end()) {
    // Fold attributed copies into the begin record so both exporters
    // (which render spans off the begin) carry them.
    MergeArg(&begin.args, "copied", copied->second);
    open_copied_.erase(copied);
  }
  TraceRecord rec;
  rec.phase = TracePhase::kSpanEnd;
  rec.time = now;
  rec.id = id;
  rec.trace_id = begin.trace_id;
  rec.parent_id = begin.parent_id;
  rec.track = begin.track;
  rec.depth = begin.depth;
  rec.cat = begin.cat;
  rec.name = begin.name;
  open_.erase(it);
  auto d = depth_by_track_.find(rec.track);
  if (d != depth_by_track_.end() && d->second > 0) --d->second;
  if (Full()) {
    // Record the end even at the limit so no span leaks open; only new
    // begins/instants are shed.
    ++dropped_;
  }
  records_.push_back(std::move(rec));
}

void Tracer::AttributeBytesCopied(uint64_t id, uint64_t n) {
  if (id == 0 || n == 0) return;
  if (open_.find(id) == open_.end()) return;
  open_copied_[id] += n;
}

void Tracer::AttributeSpanArg(uint64_t id, const std::string& key,
                              uint64_t value) {
  if (id == 0) return;
  auto it = open_.find(id);
  if (it == open_.end()) return;
  MergeArg(&records_[it->second].args, key, value);
}

void Tracer::Instant(std::string cat, std::string name, TimeNs now,
                     uint32_t track, std::string args) {
  Instant(TraceContext{}, std::move(cat), std::move(name), now, track,
          std::move(args));
}

void Tracer::Instant(const TraceContext& ctx, std::string cat,
                     std::string name, TimeNs now, uint32_t track,
                     std::string args) {
  if (!enabled_) return;
  if (Full()) {
    ++dropped_;
    return;
  }
  TraceRecord rec;
  rec.time = now;
  rec.trace_id = ctx.trace_id;
  rec.parent_id = ctx.span_id;
  rec.track = track;
  auto d = depth_by_track_.find(track);
  rec.depth = d == depth_by_track_.end() ? 0 : d->second;
  rec.cat = std::move(cat);
  rec.name = std::move(name);
  rec.args = std::move(args);
  records_.push_back(std::move(rec));
}

uint32_t Tracer::OpenDepth(uint32_t track) const {
  auto it = depth_by_track_.find(track);
  return it == depth_by_track_.end() ? 0 : it->second;
}

void Tracer::Clear() {
  records_.clear();
  open_.clear();
  open_copied_.clear();
  depth_by_track_.clear();
  dropped_ = 0;
}

void Tracer::WriteJsonLines(std::ostream& os) const {
  for (const TraceRecord& r : records_) {
    const char* ph = r.phase == TracePhase::kSpanBegin  ? "B"
                     : r.phase == TracePhase::kSpanEnd ? "E"
                                                       : "i";
    os << JsonlRecord(r, ph) << "\n";
  }
  os << "{\"ph\":\"M\",\"name\":\"trace_metadata\",\"args\":{\"dropped\":"
     << dropped_ << "}}\n";
}

void Tracer::WriteChromeTrace(std::ostream& os) const {
  // Pair span ends with their begins so spans can be emitted as complete
  // ("X") events, which viewers render without needing balanced B/E
  // streams per thread.
  std::unordered_map<uint64_t, TimeNs> end_time;
  TimeNs last = 0;
  for (const TraceRecord& r : records_) {
    if (r.time > last) last = r.time;
    if (r.phase == TracePhase::kSpanEnd) end_time.emplace(r.id, r.time);
  }

  os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  char buf[64];
  for (const TraceRecord& r : records_) {
    if (r.phase == TracePhase::kSpanEnd) continue;  // folded into "X"
    if (!first) os << ",";
    first = false;
    std::string ev = "{\"pid\":0,\"tid\":" + std::to_string(r.track);
    // Chrome timestamps are microseconds; keep ns precision fractionally.
    std::snprintf(buf, sizeof(buf), "%" PRId64 ".%03d", r.time / 1000,
                  static_cast<int>(r.time % 1000));
    ev += ",\"ts\":";
    ev += buf;
    if (r.phase == TracePhase::kSpanBegin) {
      auto it = end_time.find(r.id);
      // A span still open at export time extends to the last event.
      TimeNs dur = (it != end_time.end() ? it->second : last) - r.time;
      std::snprintf(buf, sizeof(buf), "%" PRId64 ".%03d", dur / 1000,
                    static_cast<int>(dur % 1000));
      ev += ",\"ph\":\"X\",\"dur\":";
      ev += buf;
    } else {
      ev += ",\"ph\":\"i\",\"s\":\"t\"";
    }
    ev += ",\"cat\":\"";
    AppendEscaped(&ev, r.cat);
    ev += "\",\"name\":\"";
    AppendEscaped(&ev, r.name);
    ev += "\"";
    // Causal identity rides in args so the viewer can group/filter by
    // trace; splice into the caller's args object when one exists.
    std::string args = r.args;
    if (r.id != 0) MergeArg(&args, "span", r.id);
    if (r.parent_id != 0) MergeArg(&args, "parent", r.parent_id);
    if (r.trace_id != 0) MergeArg(&args, "trace", r.trace_id);
    AppendArgs(&ev, args);
    ev += "}";
    os << ev;
  }
  // Trailing metadata event: a viewer (or a human) can tell a truncated
  // trace from a complete one.
  if (!first) os << ",";
  os << "{\"pid\":0,\"tid\":0,\"ph\":\"M\",\"name\":\"trace_metadata\","
        "\"args\":{\"dropped\":"
     << dropped_ << "}}";
  os << "]}\n";
}

}  // namespace dmrpc::obs
