#include "obs/timeline.h"

#include <utility>

#include "common/logging.h"
#include "obs/slo.h"
#include "obs/trace.h"

namespace dmrpc::obs {

void TimelineRecorder::Configure(const TimelineConfig& cfg, TimeNs anchor) {
  DMRPC_CHECK_GE(cfg.interval_ns, 0) << "negative timeline interval";
  interval_ns_ = cfg.interval_ns;
  max_windows_ = cfg.max_windows;
  if (interval_ns_ == 0) {
    next_boundary_ = std::numeric_limits<TimeNs>::max();
    return;
  }
  DMRPC_CHECK_LE(interval_ns_,
                 std::numeric_limits<TimeNs>::max() - anchor)
      << "timeline interval overflows the virtual clock";
  next_boundary_ = anchor + interval_ns_;
}

void TimelineRecorder::Clear() {
  windows_.clear();
  dropped_windows_ = 0;
  prev_counters_.clear();
  prev_timers_.clear();
}

void TimelineRecorder::SampleUpTo(TimeNs t, MetricsRegistry* reg,
                                  uint64_t events_executed,
                                  int64_t live_tasks, SloMonitor* slo,
                                  Tracer* tracer) {
  while (next_boundary_ <= t) {
    SampleOne(next_boundary_, reg, events_executed, live_tasks, slo, tracer);
    // Overflow-safe advance; a boundary past the clock's range ends the
    // grid (no event can ever reach it).
    if (next_boundary_ >
        std::numeric_limits<TimeNs>::max() - interval_ns_) {
      next_boundary_ = std::numeric_limits<TimeNs>::max();
      return;
    }
    next_boundary_ += interval_ns_;
  }
}

void TimelineRecorder::SampleOne(TimeNs boundary, MetricsRegistry* reg,
                                 uint64_t events_executed, int64_t live_tasks,
                                 SloMonitor* slo, Tracer* tracer) {
  if (windows_.size() >= max_windows_) {
    ++dropped_windows_;
    return;
  }
  TimelineWindow w;
  w.start_ns = boundary - interval_ns_;
  w.end_ns = boundary;
  w.events_executed = events_executed;
  w.live_tasks = live_tasks;

  // Latency objectives need the window's full sketch, not just its
  // summary; collect those (and only those) while diffing.
  std::map<std::string, Histogram> window_sketches;

  reg->ForEachCounter([&](const std::string& name, const Counter& c) {
    WindowCounter wc;
    wc.total = c.value();
    uint64_t& prev = prev_counters_[name];
    DMRPC_CHECK_GE(wc.total, prev) << "counter " << name << " went backwards";
    wc.delta = wc.total - prev;
    prev = wc.total;
    w.counters.emplace(name, wc);
  });
  reg->ForEachGauge([&](const std::string& name, const Gauge& g) {
    w.gauges.emplace(name, WindowGauge{g.value(), g.max()});
  });
  reg->ForEachTimer([&](const std::string& name, const Timer& t) {
    auto it = prev_timers_.find(name);
    Histogram diff;
    if (it == prev_timers_.end()) {
      diff = t.hist();  // first window containing this timer
    } else {
      diff = t.hist().Diff(it->second);
    }
    WindowTimer wt;
    wt.count = diff.count();
    wt.sum = diff.sum();
    wt.p50 = diff.p50();
    wt.p99 = diff.p99();
    wt.p999 = diff.p999();
    wt.max = diff.max();
    w.timers.emplace(name, wt);
    if (slo != nullptr && slo->armed()) {
      for (const SloObjective& obj : slo->objectives()) {
        if (obj.kind == SloObjective::Kind::kLatency && obj.timer == name) {
          window_sketches.emplace(name, std::move(diff));
          break;
        }
      }
    }
    prev_timers_[name] = t.hist();  // snapshot for the next boundary
  });

  if (slo != nullptr && slo->armed()) {
    slo->Evaluate(&w, window_sketches, reg, tracer);
  }
  windows_.push_back(std::move(w));
}

namespace {

void AppendJsonKey(std::string* out, const std::string& name) {
  out->push_back('"');
  for (char c : name) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
  *out += "\":";
}

}  // namespace

std::string TimelineRecorder::ToJsonLines() const {
  std::string out;
  out.reserve(256 + windows_.size() * 512);
  // Header line: grid parameters plus the drop count, so a consumer can
  // tell a complete sidecar from a capped one.
  out += "{\"timeline\":{\"interval_ns\":" + std::to_string(interval_ns_);
  out += ",\"windows\":" + std::to_string(windows_.size());
  out += ",\"dropped_windows\":" + std::to_string(dropped_windows_);
  out += "}}\n";
  for (size_t i = 0; i < windows_.size(); ++i) {
    const TimelineWindow& w = windows_[i];
    out += "{\"window\":" + std::to_string(i);
    out += ",\"start_ns\":" + std::to_string(w.start_ns);
    out += ",\"end_ns\":" + std::to_string(w.end_ns);
    out += ",\"events_executed\":" + std::to_string(w.events_executed);
    out += ",\"live_tasks\":" + std::to_string(w.live_tasks);
    out += ",\"counters\":{";
    bool first = true;
    for (const auto& [name, c] : w.counters) {
      if (!first) out += ",";
      first = false;
      AppendJsonKey(&out, name);
      out += "{\"total\":" + std::to_string(c.total);
      out += ",\"delta\":" + std::to_string(c.delta) + "}";
    }
    out += "},\"gauges\":{";
    first = true;
    for (const auto& [name, g] : w.gauges) {
      if (!first) out += ",";
      first = false;
      AppendJsonKey(&out, name);
      out += "{\"value\":" + std::to_string(g.value);
      out += ",\"max\":" + std::to_string(g.max) + "}";
    }
    out += "},\"timers\":{";
    first = true;
    for (const auto& [name, t] : w.timers) {
      if (!first) out += ",";
      first = false;
      AppendJsonKey(&out, name);
      out += "{\"count\":" + std::to_string(t.count);
      out += ",\"sum\":" + std::to_string(t.sum);
      out += ",\"p50\":" + std::to_string(t.p50);
      out += ",\"p99\":" + std::to_string(t.p99);
      out += ",\"p999\":" + std::to_string(t.p999);
      out += ",\"max\":" + std::to_string(t.max) + "}";
    }
    out += "},\"slo\":[";
    for (size_t s = 0; s < w.slo.size(); ++s) {
      const WindowSlo& v = w.slo[s];
      if (s > 0) out += ",";
      out += "{\"name\":\"" + v.name + "\"";
      out += ",\"bad\":" + std::to_string(v.bad);
      out += ",\"total\":" + std::to_string(v.total);
      out += ",\"burn_milli\":" + std::to_string(v.burn_milli);
      out += ",\"breached\":" + std::string(v.breached ? "1" : "0") + "}";
    }
    out += "]}\n";
  }
  return out;
}

void TimelineRecorder::WriteCounterTrack(
    std::ostream& os, const std::vector<std::string>& series) const {
  auto wanted = [&series](const std::string& name) {
    if (series.empty()) return true;
    for (const std::string& s : series) {
      if (s == name) return true;
    }
    return false;
  };
  os << "{\"traceEvents\":[";
  bool first = true;
  auto emit = [&](const std::string& name, TimeNs ts_ns, int64_t value) {
    if (!first) os << ",";
    first = false;
    // trace_event counter phase; ts is microseconds in the viewer.
    os << "\n{\"name\":\"" << name << "\",\"ph\":\"C\",\"pid\":0,\"tid\":0,"
       << "\"ts\":" << ts_ns / 1000 << ",\"args\":{\"value\":" << value
       << "}}";
  };
  for (const TimelineWindow& w : windows_) {
    for (const auto& [name, c] : w.counters) {
      if (c.delta == 0 && c.total == 0) continue;  // all-quiet series
      if (!wanted(name)) continue;
      emit(name + ".rate", w.end_ns, static_cast<int64_t>(c.delta));
    }
    for (const auto& [name, g] : w.gauges) {
      if (g.value == 0 && g.max == 0) continue;
      if (!wanted(name)) continue;
      emit(name, w.end_ns, g.value);
    }
    for (const auto& [name, t] : w.timers) {
      if (t.count == 0) continue;
      if (!wanted(name)) continue;
      emit(name + ".p99", w.end_ns, t.p99);
    }
    for (const WindowSlo& v : w.slo) {
      if (!wanted("slo." + v.name)) continue;
      emit("slo." + v.name + ".burn_milli", w.end_ns, v.burn_milli);
    }
  }
  os << "\n]}\n";
}

}  // namespace dmrpc::obs
