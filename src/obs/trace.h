#ifndef DMRPC_OBS_TRACE_H_
#define DMRPC_OBS_TRACE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/units.h"

namespace dmrpc::obs {

/// What a recorded trace event marks.
enum class TracePhase : uint8_t {
  kSpanBegin = 0,  // a duration opens (rpc call, handler run, NIC tx)
  kSpanEnd = 1,    // the matching duration closes
  kInstant = 2,    // a point event (packet drop, page fault, COW copy)
};

/// One recorded event. Spans are stored as begin/end pairs linked by
/// `id`; `depth` is the number of spans already open on the same track
/// when this one began (used to assert nesting in tests).
struct TraceRecord {
  TracePhase phase = TracePhase::kInstant;
  TimeNs time = 0;     // virtual time
  uint64_t id = 0;     // span id (0 for instants)
  uint32_t track = 0;  // display lane, conventionally the node id
  uint32_t depth = 0;  // open-span depth on `track` at begin time
  std::string cat;     // layer: "sim", "net", "rpc", "dm", "app"
  std::string name;    // event name, e.g. "rpc.call"
  std::string args;    // optional JSON object ("{...}"), or empty
};

/// Records typed spans and instants on the simulation's virtual-time
/// axis and exports them as JSON-lines or as a Chrome `trace_event` file
/// loadable in chrome://tracing or https://ui.perfetto.dev.
///
/// The tracer is owned by `sim::Simulation` and is purely observational:
/// recording never schedules events, consumes randomness, or otherwise
/// perturbs the run, so enabling it cannot change any measured number.
/// It is disabled by default (Begin/Instant are a single branch); when
/// enabled it keeps at most `limit()` records in memory and counts the
/// overflow in dropped().
class Tracer {
 public:
  Tracer() = default;

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  /// Maximum records retained (default 1M ~ 100 MB worst case).
  size_t limit() const { return limit_; }
  void set_limit(size_t n) { limit_ = n; }

  /// Opens a span at virtual time `now`; returns its id (0 when the
  /// tracer is disabled or full -- EndSpan ignores id 0).
  uint64_t BeginSpan(std::string cat, std::string name, TimeNs now,
                     uint32_t track = 0, std::string args = "");

  /// Closes span `id` at virtual time `now`.
  void EndSpan(uint64_t id, TimeNs now);

  /// Records a point event.
  void Instant(std::string cat, std::string name, TimeNs now,
               uint32_t track = 0, std::string args = "");

  const std::vector<TraceRecord>& records() const { return records_; }
  size_t dropped() const { return dropped_; }

  /// Spans currently open on `track`.
  uint32_t OpenDepth(uint32_t track) const;

  void Clear();

  /// One JSON object per line, in record order:
  ///   {"ph":"B","ts":120,"track":0,"cat":"rpc","name":"rpc.call",...}
  /// `ts` is virtual nanoseconds. Machine-oriented; diffable.
  void WriteJsonLines(std::ostream& os) const;

  /// Chrome trace_event JSON (the `{"traceEvents":[...]}` form). Spans
  /// become complete ("X") slices with microsecond timestamps, instants
  /// become "i" events; the track maps to `tid` and layers ("cat") are
  /// preserved for filtering in the viewer.
  void WriteChromeTrace(std::ostream& os) const;

 private:
  bool Full() const { return records_.size() >= limit_; }

  bool enabled_ = false;
  size_t limit_ = 1u << 20;
  uint64_t next_id_ = 1;
  size_t dropped_ = 0;
  std::vector<TraceRecord> records_;
  /// id -> index of the kSpanBegin record (dropped on EndSpan).
  std::unordered_map<uint64_t, size_t> open_;
  std::unordered_map<uint32_t, uint32_t> depth_by_track_;
};

}  // namespace dmrpc::obs

#endif  // DMRPC_OBS_TRACE_H_
