#ifndef DMRPC_OBS_TRACE_H_
#define DMRPC_OBS_TRACE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/units.h"
#include "obs/trace_context.h"

namespace dmrpc::obs {

/// What a recorded trace event marks.
enum class TracePhase : uint8_t {
  kSpanBegin = 0,  // a duration opens (rpc call, handler run, NIC tx)
  kSpanEnd = 1,    // the matching duration closes
  kInstant = 2,    // a point event (packet drop, page fault, COW copy)
};

/// One recorded event. Spans are stored as begin/end pairs linked by
/// `id`; `depth` is the number of spans already open on the same track
/// when this one began (used to assert nesting in tests). Spans opened
/// through the causal overload additionally carry the trace they belong
/// to and their causal parent span, which is what lets the analyzer
/// stitch per-node spans into one distributed request tree.
struct TraceRecord {
  TracePhase phase = TracePhase::kInstant;
  TimeNs time = 0;        // virtual time
  uint64_t id = 0;        // span id (0 for instants)
  uint64_t trace_id = 0;  // causal trace (0 = not part of a trace)
  uint64_t parent_id = 0; // causal parent span (0 = root of its trace)
  uint32_t track = 0;     // display lane, conventionally the node id
  uint32_t depth = 0;     // open-span depth on `track` at begin time
  std::string cat;        // layer: "sim", "net", "rpc", "dm", "app"
  std::string name;       // event name, e.g. "rpc.call"
  std::string args;       // optional JSON object ("{...}"), or empty
};

/// Records typed spans and instants on the simulation's virtual-time
/// axis and exports them as JSON-lines or as a Chrome `trace_event` file
/// loadable in chrome://tracing or https://ui.perfetto.dev.
///
/// The tracer is owned by `sim::Simulation` and is purely observational:
/// recording never schedules events, consumes randomness, or otherwise
/// perturbs the run, so enabling it cannot change any measured number.
/// It is disabled by default (Begin/Instant are a single branch); when
/// enabled it keeps at most `limit()` records in memory and counts the
/// overflow in dropped(). A nonzero drop count is surfaced three ways so
/// a truncated trace is detectable instead of silently misleading: the
/// dropped() accessor, a metadata record in both export formats, and an
/// `obs.trace_dropped` entry folded into the simulation metrics dump.
class Tracer {
 public:
  Tracer() = default;

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  /// Maximum records retained (default 1M ~ 100 MB worst case).
  size_t limit() const { return limit_; }
  void set_limit(size_t n) { limit_ = n; }

  /// Mints a fresh trace id. The counter always advances, even while the
  /// tracer is disabled, so the ids carried on packet headers are
  /// identical whether or not recording is on (tracing must not change
  /// what crosses the simulated wire).
  uint64_t NextTraceId() { return next_trace_id_++; }

  /// Opens an untraced span at virtual time `now`; returns its id (0
  /// when the tracer is disabled or full -- EndSpan ignores id 0).
  uint64_t BeginSpan(std::string cat, std::string name, TimeNs now,
                     uint32_t track = 0, std::string args = "");

  /// Opens a causally-linked span: it belongs to `ctx.trace_id` and its
  /// causal parent is `ctx.span_id` (0 = this span is the trace root).
  uint64_t BeginSpan(const TraceContext& ctx, std::string cat,
                     std::string name, TimeNs now, uint32_t track = 0,
                     std::string args = "");

  /// Closes span `id` at virtual time `now`.
  void EndSpan(uint64_t id, TimeNs now);

  /// Accumulates `n` payload bytes memcpy'd while span `id` was open;
  /// emitted as a `"copied"` arg on the span. Ignored when `id` is not a
  /// currently open span.
  void AttributeBytesCopied(uint64_t id, uint64_t n);

  /// Merges `key:value` into open span `id`'s args (attributes known
  /// only mid-span, e.g. response bytes). Ignored when `id` is 0 or not
  /// open.
  void AttributeSpanArg(uint64_t id, const std::string& key, uint64_t value);

  /// Records a point event.
  void Instant(std::string cat, std::string name, TimeNs now,
               uint32_t track = 0, std::string args = "");

  /// Causally-linked point event (carries trace/parent like a span).
  void Instant(const TraceContext& ctx, std::string cat, std::string name,
               TimeNs now, uint32_t track = 0, std::string args = "");

  const std::vector<TraceRecord>& records() const { return records_; }
  size_t dropped() const { return dropped_; }

  /// Spans begun and not yet ended (the chaos harness asserts this is 0
  /// after every iteration: no span leaks).
  size_t open_span_count() const { return open_.size(); }

  /// Spans currently open on `track`.
  uint32_t OpenDepth(uint32_t track) const;

  void Clear();

  /// One JSON object per line, in record order:
  ///   {"ph":"B","ts":120,"id":7,"trace":3,"parent":5,"track":0,...}
  /// `ts` is virtual nanoseconds. Machine-oriented; diffable. Ends with
  /// a metadata line {"ph":"M",...,"args":{"dropped":N}}.
  void WriteJsonLines(std::ostream& os) const;

  /// Chrome trace_event JSON (the `{"traceEvents":[...]}` form). Spans
  /// become complete ("X") slices with microsecond timestamps, instants
  /// become "i" events; the track maps to `tid`, layers ("cat") are
  /// preserved for filtering in the viewer, and trace/parent ids ride in
  /// `args`. A final metadata event reports dropped().
  void WriteChromeTrace(std::ostream& os) const;

 private:
  bool Full() const { return records_.size() >= limit_; }
  uint64_t BeginSpanRecord(uint64_t trace_id, uint64_t parent_id,
                           std::string cat, std::string name, TimeNs now,
                           uint32_t track, std::string args);

  bool enabled_ = false;
  size_t limit_ = 1u << 20;
  uint64_t next_id_ = 1;
  uint64_t next_trace_id_ = 1;
  size_t dropped_ = 0;
  std::vector<TraceRecord> records_;
  /// id -> index of the kSpanBegin record (dropped on EndSpan).
  std::unordered_map<uint64_t, size_t> open_;
  /// id -> bytes copied attributed while open (see AttributeBytesCopied).
  std::unordered_map<uint64_t, uint64_t> open_copied_;
  std::unordered_map<uint32_t, uint32_t> depth_by_track_;
};

/// The ambient trace context, minting a fresh root trace (sampled, no
/// parent span) from `tracer` when no trace is active. Layers that can
/// be the entry point of a request (the root DmRpc call, a service
/// endpoint) use this so every span they record belongs to some trace.
/// The mint is unconditional -- the id counter advances identically
/// whether or not recording is enabled, keeping traced and untraced runs
/// byte-identical on the wire.
inline TraceContext EnsureTraceContext(Tracer& tracer) {
  TraceContext ctx = CurrentTraceContext();
  if (!ctx.valid()) {
    ctx.trace_id = tracer.NextTraceId();
    ctx.span_id = 0;
    ctx.flags = TraceContext::kSampled;
  }
  return ctx;
}

}  // namespace dmrpc::obs

#endif  // DMRPC_OBS_TRACE_H_
