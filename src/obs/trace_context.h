#ifndef DMRPC_OBS_TRACE_CONTEXT_H_
#define DMRPC_OBS_TRACE_CONTEXT_H_

#include <cstdint>

namespace dmrpc::obs {

/// Causal identity of the end-to-end request the currently executing
/// code works on behalf of (Dapper-style). A context is assigned at the
/// root RPC of a request, carried on every packet header the request
/// causes (see rpc::PacketHeader), and inherited by every nested RPC,
/// dmnet fetch, and CXL/dm page operation a handler performs.
///
/// Propagation is ambient: the simulator's coroutine machinery captures
/// the context at task-frame creation and restores it across every
/// suspension (see sim/task.h), so layers read CurrentTraceContext()
/// instead of threading an argument through every signature. The
/// plumbing is unconditional and purely value-copying -- it never
/// schedules events, consumes randomness, or touches metrics -- so it
/// cannot perturb a deterministic run; only span *recording* is gated on
/// the tracer being enabled.
struct TraceContext {
  /// Flag bit: the trace is sampled (recorded). The simulator records
  /// 100% of traces when tracing is on, but the bit travels on the wire
  /// so the decision is made once, at the root.
  static constexpr uint8_t kSampled = 0x1;
  /// All bits with defined meaning; the wire decoder rejects headers
  /// carrying any other bit (malformed trace context).
  static constexpr uint8_t kValidFlags = kSampled;

  uint64_t trace_id = 0;  // 0 = no trace (untraced work)
  uint64_t span_id = 0;   // causal parent span within the trace
  uint8_t flags = 0;      // kSampled etc.

  bool valid() const { return trace_id != 0; }
  bool sampled() const { return (flags & kSampled) != 0; }

  friend bool operator==(const TraceContext&, const TraceContext&) = default;
};

namespace internal {
/// The ambient slot. The simulator is single-threaded per Simulation;
/// thread_local keeps independent simulations on different threads (the
/// test runner) from interfering.
inline thread_local TraceContext g_trace_context;
}  // namespace internal

/// The context of the currently executing coroutine (or {} outside any
/// traced request).
inline TraceContext CurrentTraceContext() {
  return internal::g_trace_context;
}

inline void SetCurrentTraceContext(const TraceContext& ctx) {
  internal::g_trace_context = ctx;
}

/// RAII: installs `ctx` for the current scope, restoring the previous
/// context on destruction. For synchronous code; inside a coroutine
/// prefer SetCurrentTraceContext (the coroutine plumbing carries the
/// assignment across suspensions, which a stack-scoped guard cannot).
class TraceContextScope {
 public:
  explicit TraceContextScope(const TraceContext& ctx)
      : prev_(internal::g_trace_context) {
    internal::g_trace_context = ctx;
  }
  ~TraceContextScope() { internal::g_trace_context = prev_; }

  TraceContextScope(const TraceContextScope&) = delete;
  TraceContextScope& operator=(const TraceContextScope&) = delete;

 private:
  TraceContext prev_;
};

}  // namespace dmrpc::obs

#endif  // DMRPC_OBS_TRACE_CONTEXT_H_
