#include "obs/slo.h"

#include <utility>

#include "common/logging.h"
#include "obs/trace.h"

namespace dmrpc::obs {

SloObjective SloObjective::Latency(std::string name, std::string timer,
                                   TimeNs target_ns, double budget,
                                   double burn_threshold) {
  SloObjective o;
  o.name = std::move(name);
  o.kind = Kind::kLatency;
  o.timer = std::move(timer);
  o.target_ns = target_ns;
  o.budget = budget;
  o.burn_threshold = burn_threshold;
  return o;
}

SloObjective SloObjective::Ratio(std::string name, std::string bad_counter,
                                 std::string total_counter, double budget,
                                 double burn_threshold) {
  SloObjective o;
  o.name = std::move(name);
  o.kind = Kind::kRatio;
  o.bad_counter = std::move(bad_counter);
  o.total_counter = std::move(total_counter);
  o.budget = budget;
  o.burn_threshold = burn_threshold;
  return o;
}

void SloMonitor::AddObjective(SloObjective obj) {
  DMRPC_CHECK(!obj.name.empty()) << "SLO objective needs a name";
  DMRPC_CHECK_GT(obj.budget, 0.0) << "SLO " << obj.name << ": zero budget";
  objectives_.push_back(std::move(obj));
}

void SloMonitor::Evaluate(TimelineWindow* window,
                          const std::map<std::string, Histogram>& sketches,
                          MetricsRegistry* reg, Tracer* tracer) {
  for (const SloObjective& obj : objectives_) {
    WindowSlo verdict;
    verdict.name = obj.name;
    if (obj.kind == SloObjective::Kind::kLatency) {
      auto it = sketches.find(obj.timer);
      if (it != sketches.end()) {
        const Histogram& h = it->second;
        verdict.total = h.count();
        verdict.bad = h.count() - h.CountAtOrBelow(obj.target_ns);
      }
    } else {
      auto bad = window->counters.find(obj.bad_counter);
      auto total = window->counters.find(obj.total_counter);
      if (bad != window->counters.end()) verdict.bad = bad->second.delta;
      if (total != window->counters.end()) {
        verdict.total = total->second.delta;
      }
      // A drop with no forwarded traffic is still all-bad traffic.
      if (verdict.total < verdict.bad) verdict.total = verdict.bad;
    }
    ++evaluations_;

    if (verdict.total > 0) {
      // burn = (bad/total)/budget, kept in thousandths so the sidecar
      // stays integer-only. The double intermediate is exact enough:
      // both operands are <= 2^53 in any plausible window.
      double burn = (static_cast<double>(verdict.bad) /
                     static_cast<double>(verdict.total)) /
                    obj.budget;
      verdict.burn_milli = static_cast<int64_t>(burn * 1000.0);
      verdict.breached = burn >= obj.burn_threshold;
    }

    if (verdict.breached) {
      SloBreach b;
      b.name = obj.name;
      b.window_start = window->start_ns;
      b.window_end = window->end_ns;
      b.bad = verdict.bad;
      b.total = verdict.total;
      b.burn_milli = verdict.burn_milli;
      breaches_.push_back(b);
      if (reg != nullptr) {
        // Lazily registered, like obs.trace_dropped: the counter appears
        // in dumps only for objectives that actually breached, and its
        // presence is identical whether or not sampling was on (it can
        // only exist when sampling is on, and the dump fingerprint
        // comparison for zero-perturbation strips slo.* first).
        reg->GetCounter("slo." + obj.name + ".breaches")->Inc();
      }
      if (tracer != nullptr && tracer->enabled()) {
        tracer->Instant("slo", obj.name + " burn " +
                                   std::to_string(verdict.burn_milli) +
                                   "m (bad " + std::to_string(verdict.bad) +
                                   "/" + std::to_string(verdict.total) + ")",
                        window->end_ns);
      }
    }
    window->slo.push_back(std::move(verdict));
  }
}

}  // namespace dmrpc::obs
