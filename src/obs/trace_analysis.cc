#include "obs/trace_analysis.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <sstream>

namespace dmrpc::obs {

namespace {

/// How many structural problems Check() describes verbatim before it
/// just counts; keeps reports readable on badly broken dumps.
constexpr size_t kMaxProblemDescriptions = 10;

// --- JSONL parsing ---------------------------------------------------------
// The parser accepts exactly what Tracer::WriteJsonLines emits (one flat
// object per line; string, integer, or object values). Unknown keys are
// skipped so the format can grow without breaking old analyzers.

struct Cursor {
  const std::string& s;
  size_t i = 0;

  bool done() const { return i >= s.size(); }
  char peek() const { return s[i]; }
  bool Eat(char c) {
    if (done() || s[i] != c) return false;
    ++i;
    return true;
  }
};

bool ParseString(Cursor* c, std::string* out) {
  if (!c->Eat('"')) return false;
  out->clear();
  while (!c->done()) {
    char ch = c->s[c->i++];
    if (ch == '"') return true;
    if (ch != '\\') {
      out->push_back(ch);
      continue;
    }
    if (c->done()) return false;
    char esc = c->s[c->i++];
    switch (esc) {
      case '"': out->push_back('"'); break;
      case '\\': out->push_back('\\'); break;
      case '/': out->push_back('/'); break;
      case 'n': out->push_back('\n'); break;
      case 'r': out->push_back('\r'); break;
      case 't': out->push_back('\t'); break;
      case 'b': out->push_back('\b'); break;
      case 'f': out->push_back('\f'); break;
      case 'u': {
        if (c->i + 4 > c->s.size()) return false;
        unsigned v = 0;
        for (int k = 0; k < 4; ++k) {
          char h = c->s[c->i++];
          v <<= 4;
          if (h >= '0' && h <= '9') v |= static_cast<unsigned>(h - '0');
          else if (h >= 'a' && h <= 'f') v |= static_cast<unsigned>(h - 'a' + 10);
          else if (h >= 'A' && h <= 'F') v |= static_cast<unsigned>(h - 'A' + 10);
          else return false;
        }
        // The tracer only \u-escapes control bytes; anything else is
        // replaced rather than decoded (analysis never needs it).
        out->push_back(v < 0x80 ? static_cast<char>(v) : '?');
        break;
      }
      default:
        return false;
    }
  }
  return false;  // unterminated
}

bool ParseInt(Cursor* c, int64_t* out) {
  bool neg = c->Eat('-');
  if (c->done() || c->peek() < '0' || c->peek() > '9') return false;
  uint64_t v = 0;
  while (!c->done() && c->peek() >= '0' && c->peek() <= '9') {
    v = v * 10 + static_cast<uint64_t>(c->s[c->i++] - '0');
  }
  *out = neg ? -static_cast<int64_t>(v) : static_cast<int64_t>(v);
  return true;
}

/// Captures a balanced object/array (string-aware) as raw text.
bool ParseRawValue(Cursor* c, std::string* out) {
  size_t start = c->i;
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  while (!c->done()) {
    char ch = c->s[c->i++];
    if (in_string) {
      if (escaped) escaped = false;
      else if (ch == '\\') escaped = true;
      else if (ch == '"') in_string = false;
      continue;
    }
    if (ch == '"') in_string = true;
    else if (ch == '{' || ch == '[') ++depth;
    else if (ch == '}' || ch == ']') {
      if (--depth == 0) {
        *out = c->s.substr(start, c->i - start);
        return true;
      }
      if (depth < 0) return false;
    }
  }
  return false;
}

// --- report formatting -----------------------------------------------------

std::string Percent(TimeNs part, TimeNs whole) {
  char buf[32];
  double pct = whole > 0 ? 100.0 * static_cast<double>(part) /
                               static_cast<double>(whole)
                         : 0.0;
  std::snprintf(buf, sizeof(buf), "%6.2f%%", pct);
  return buf;
}

void AppendAggregate(std::ostream& os, const std::string& label,
                     const BreakdownAggregate& agg) {
  os << "== latency breakdown (" << label << ") ==\n";
  os << "requests: " << agg.requests << "\n";
  if (agg.requests == 0) return;
  os << "latency ns: p50=" << agg.p50 << " p95=" << agg.p95
     << " p99=" << agg.p99 << " max=" << agg.max
     << " total=" << agg.total_latency << "\n";
  os << "wire_bytes: " << agg.wire_bytes
     << "  copied_bytes: " << agg.copied_bytes << "\n";
  os << "critical-path time by layer:\n";
  for (const auto& [cat, ns] : agg.by_layer) {
    os << "  " << cat;
    for (size_t i = cat.size(); i < 8; ++i) os << ' ';
    os << ns << " ns  " << Percent(ns, agg.total_latency) << "\n";
  }
  os << "critical-path time by hop (track):\n";
  for (const auto& [track, ns] : agg.by_hop) {
    os << "  track " << track << "  " << ns << " ns  "
       << Percent(ns, agg.total_latency) << "\n";
  }
}

}  // namespace

uint64_t TraceAnalysis::ArgValue(const std::string& args,
                                 const std::string& key, uint64_t fallback) {
  std::string needle = "\"" + key + "\":";
  size_t pos = args.find(needle);
  if (pos == std::string::npos) return fallback;
  pos += needle.size();
  if (pos >= args.size() || args[pos] < '0' || args[pos] > '9') {
    return fallback;
  }
  uint64_t v = 0;
  while (pos < args.size() && args[pos] >= '0' && args[pos] <= '9') {
    v = v * 10 + static_cast<uint64_t>(args[pos++] - '0');
  }
  return v;
}

void TraceAnalysis::AddRecords(const std::vector<TraceRecord>& records,
                               size_t dropped) {
  records_.insert(records_.end(), records.begin(), records.end());
  dropped_ += dropped;
  built_ = false;
}

bool TraceAnalysis::ParseJsonLines(std::istream& is, std::string* error) {
  std::string line;
  size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    Cursor c{line};
    auto fail = [&](const char* what) {
      if (error != nullptr) {
        *error = "line " + std::to_string(lineno) + ": " + what;
      }
      return false;
    };
    if (!c.Eat('{')) return fail("expected object");
    TraceRecord rec;
    std::string ph;
    bool first = true;
    for (;;) {
      if (c.Eat('}')) break;
      if (!first && !c.Eat(',')) return fail("expected ','");
      first = false;
      std::string key;
      if (!ParseString(&c, &key)) return fail("expected key");
      if (!c.Eat(':')) return fail("expected ':'");
      if (c.done()) return fail("truncated line");
      if (c.peek() == '"') {
        std::string val;
        if (!ParseString(&c, &val)) return fail("bad string value");
        if (key == "ph") ph = val;
        else if (key == "cat") rec.cat = val;
        else if (key == "name") rec.name = val;
      } else if (c.peek() == '{' || c.peek() == '[') {
        std::string raw;
        if (!ParseRawValue(&c, &raw)) return fail("unbalanced value");
        if (key == "args") rec.args = raw;
      } else {
        int64_t v = 0;
        if (!ParseInt(&c, &v)) return fail("bad number");
        if (key == "ts") rec.time = v;
        else if (key == "id") rec.id = static_cast<uint64_t>(v);
        else if (key == "trace") rec.trace_id = static_cast<uint64_t>(v);
        else if (key == "parent") rec.parent_id = static_cast<uint64_t>(v);
        else if (key == "track") rec.track = static_cast<uint32_t>(v);
        else if (key == "depth") rec.depth = static_cast<uint32_t>(v);
      }
    }
    if (ph == "B") rec.phase = TracePhase::kSpanBegin;
    else if (ph == "E") rec.phase = TracePhase::kSpanEnd;
    else if (ph == "i") rec.phase = TracePhase::kInstant;
    else if (ph == "M") {
      if (rec.name == "trace_metadata") {
        dropped_ += ArgValue(rec.args, "dropped");
      }
      continue;  // metadata is not a record
    } else {
      return fail("unknown ph");
    }
    records_.push_back(std::move(rec));
  }
  built_ = false;
  return true;
}

void TraceAnalysis::Build() {
  spans_.clear();
  span_index_.clear();
  instants_ = 0;
  for (const TraceRecord& r : records_) {
    switch (r.phase) {
      case TracePhase::kSpanBegin: {
        SpanNode node;
        node.id = r.id;
        node.trace_id = r.trace_id;
        node.parent_id = r.parent_id;
        node.track = r.track;
        node.start = r.time;
        node.end = r.time;  // until the end record arrives
        node.cat = r.cat;
        node.name = r.name;
        node.args = r.args;
        span_index_.emplace(r.id, spans_.size());
        spans_.push_back(std::move(node));
        break;
      }
      case TracePhase::kSpanEnd: {
        auto it = span_index_.find(r.id);
        if (it == span_index_.end()) break;  // begin was dropped
        spans_[it->second].end = r.time;
        spans_[it->second].closed = true;
        break;
      }
      case TracePhase::kInstant:
        ++instants_;
        break;
    }
  }
  // Causal edges. A parent in a *different* trace is a structural bug
  // (reported by Check); such edges are excluded so tree walks stay
  // within one request.
  for (size_t i = 0; i < spans_.size(); ++i) {
    if (spans_[i].parent_id == 0) continue;
    auto it = span_index_.find(spans_[i].parent_id);
    if (it == span_index_.end()) continue;  // orphan (reported by Check)
    if (spans_[it->second].trace_id != spans_[i].trace_id) continue;
    spans_[it->second].children.push_back(i);
  }
  built_ = true;
}

WellFormedness TraceAnalysis::Check() const {
  WellFormedness wf;
  wf.spans = spans_.size();
  wf.instants = instants_;
  wf.dropped = dropped_;
  auto note = [&wf](std::string msg) {
    if (wf.problems.size() < kMaxProblemDescriptions) {
      wf.problems.push_back(std::move(msg));
    }
  };
  if (dropped_ > 0) {
    note("trace truncated: " + std::to_string(dropped_) +
         " records dropped");
  }
  std::map<uint64_t, size_t> roots_per_trace;
  for (const SpanNode& s : spans_) {
    if (s.trace_id != 0) roots_per_trace.emplace(s.trace_id, 0);
    if (!s.closed) {
      ++wf.unclosed;
      note("span " + std::to_string(s.id) + " (" + s.name +
           ") never closed");
    }
    if (s.trace_id == 0) continue;  // background span: no tree checks
    if (s.parent_id == 0) {
      ++roots_per_trace[s.trace_id];
      continue;
    }
    auto it = span_index_.find(s.parent_id);
    if (it == span_index_.end()) {
      ++wf.orphans;
      note("span " + std::to_string(s.id) + " (" + s.name + ") parent " +
           std::to_string(s.parent_id) + " missing");
      continue;
    }
    const SpanNode& p = spans_[it->second];
    if (p.trace_id != s.trace_id) {
      ++wf.cross_trace;
      note("span " + std::to_string(s.id) + " in trace " +
           std::to_string(s.trace_id) + " but parent " +
           std::to_string(p.id) + " in trace " +
           std::to_string(p.trace_id));
      continue;
    }
    if (s.closed && p.closed && (s.start < p.start || s.end > p.end)) {
      if (s.start >= p.end) {
        // Detached continuation: spawned as the parent finished (e.g. a
        // deferred Ref release). Causally linked but intentionally off
        // the request path, so not a nesting violation.
        ++wf.async_children;
      } else {
        ++wf.interval_violations;
        note("span " + std::to_string(s.id) + " (" + s.name + ") [" +
             std::to_string(s.start) + "," + std::to_string(s.end) +
             "] outside parent " + std::to_string(p.id) + " [" +
             std::to_string(p.start) + "," + std::to_string(p.end) + "]");
      }
    }
  }
  wf.traces = roots_per_trace.size();
  for (const auto& [trace, roots] : roots_per_trace) {
    if (roots != 1) {
      ++wf.multi_root_traces;
      note("trace " + std::to_string(trace) + " has " +
           std::to_string(roots) + " roots");
    }
  }
  return wf;
}

void TraceAnalysis::AttributeCriticalPath(size_t idx, TimeNs end,
                                          TimeNs floor,
                                          RequestBreakdown* out) const {
  const SpanNode& s = spans_[idx];
  auto credit = [&](TimeNs ns) {
    if (ns <= 0) return;
    out->by_layer[s.cat] += ns;
    out->by_hop[s.track] += ns;
  };
  // Backward walk: at each instant the deepest span still running owns
  // the time. Children sorted by end time descending (id breaks ties
  // deterministically); the child finishing latest before the cursor is
  // the one on the critical path there.
  std::vector<size_t> kids = s.children;
  std::sort(kids.begin(), kids.end(), [this](size_t a, size_t b) {
    if (spans_[a].end != spans_[b].end) return spans_[a].end > spans_[b].end;
    return spans_[a].id > spans_[b].id;
  });
  TimeNs cur = end;
  for (size_t k : kids) {
    const SpanNode& c = spans_[k];
    if (!c.closed) continue;
    TimeNs c_end = std::min(c.end, cur);
    TimeNs c_start = std::max(c.start, floor);
    if (c_end <= floor) break;  // sorted: nothing later reaches the window
    if (c_start >= c_end) continue;  // zero width after clamping
    credit(cur - c_end);  // the parent ran alone in (c_end, cur]
    AttributeCriticalPath(k, c_end, c_start, out);
    cur = c_start;
    if (cur <= floor) return;
  }
  credit(cur - floor);
}

std::vector<RequestBreakdown> TraceAnalysis::Breakdowns() const {
  // Group spans per trace; breakdowns only for traces with exactly one
  // closed root (Check() reports everything else).
  std::map<uint64_t, std::vector<size_t>> by_trace;
  for (size_t i = 0; i < spans_.size(); ++i) {
    if (spans_[i].trace_id != 0) by_trace[spans_[i].trace_id].push_back(i);
  }
  std::vector<RequestBreakdown> out;
  for (const auto& [trace_id, members] : by_trace) {
    size_t root = spans_.size();
    size_t roots = 0;
    for (size_t i : members) {
      if (spans_[i].parent_id == 0) {
        root = i;
        ++roots;
      }
    }
    if (roots != 1 || !spans_[root].closed) continue;
    RequestBreakdown bd;
    bd.trace_id = trace_id;
    bd.latency = spans_[root].duration();
    bd.root_name = spans_[root].name;
    bd.root_args = spans_[root].args;
    for (size_t i : members) {
      const SpanNode& s = spans_[i];
      bd.copied_bytes += ArgValue(s.args, "copied");
      if (s.cat == "dmrpc" && ArgValue(s.args, "by_ref") == 1) {
        bd.by_ref = true;
      }
      if (s.name == "rpc.call") {
        bd.wire_bytes += ArgValue(s.args, "bytes");
        bd.wire_bytes += ArgValue(s.args, "resp_bytes");
      }
    }
    AttributeCriticalPath(root, spans_[root].end, spans_[root].start, &bd);
    out.push_back(std::move(bd));
  }
  return out;  // map iteration: already sorted by trace id
}

std::map<std::string, BreakdownAggregate> TraceAnalysis::Aggregate(
    const std::vector<RequestBreakdown>& breakdowns) {
  std::map<std::string, std::vector<const RequestBreakdown*>> groups;
  for (const RequestBreakdown& bd : breakdowns) {
    groups["all"].push_back(&bd);
    groups[bd.by_ref ? "by_ref" : "by_value"].push_back(&bd);
  }
  std::map<std::string, BreakdownAggregate> out;
  for (const auto& [label, group] : groups) {
    BreakdownAggregate agg;
    agg.requests = group.size();
    std::vector<TimeNs> lat;
    lat.reserve(group.size());
    for (const RequestBreakdown* bd : group) {
      lat.push_back(bd->latency);
      agg.total_latency += bd->latency;
      agg.wire_bytes += bd->wire_bytes;
      agg.copied_bytes += bd->copied_bytes;
      for (const auto& [cat, ns] : bd->by_layer) agg.by_layer[cat] += ns;
      for (const auto& [track, ns] : bd->by_hop) agg.by_hop[track] += ns;
    }
    std::sort(lat.begin(), lat.end());
    auto q = [&lat](size_t pct) {
      size_t idx = (lat.size() * pct) / 100;
      if (idx >= lat.size()) idx = lat.size() - 1;
      return lat[idx];
    };
    if (!lat.empty()) {
      agg.p50 = q(50);
      agg.p95 = q(95);
      agg.p99 = q(99);
      agg.max = lat.back();
    }
    out.emplace(label, std::move(agg));
  }
  return out;
}

std::string TraceAnalysis::TextReport() const {
  std::ostringstream os;
  WellFormedness wf = Check();
  os << "== trace well-formedness ==\n";
  os << "traces: " << wf.traces << "  spans: " << wf.spans
     << "  instants: " << wf.instants << "  dropped: " << wf.dropped << "\n";
  os << "unclosed: " << wf.unclosed << "  orphans: " << wf.orphans
     << "  cross_trace: " << wf.cross_trace
     << "  multi_root: " << wf.multi_root_traces
     << "  interval_violations: " << wf.interval_violations
     << "  async_children: " << wf.async_children << "\n";
  os << "status: " << (wf.ok() ? "OK" : "PROBLEMS") << "\n";
  for (const std::string& p : wf.problems) os << "  ! " << p << "\n";
  std::vector<RequestBreakdown> bds = Breakdowns();
  for (const auto& [label, agg] : Aggregate(bds)) {
    os << "\n";
    AppendAggregate(os, label, agg);
  }
  return os.str();
}

}  // namespace dmrpc::obs
