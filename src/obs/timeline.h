#ifndef DMRPC_OBS_TIMELINE_H_
#define DMRPC_OBS_TIMELINE_H_

#include <cstdint>
#include <limits>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/units.h"
#include "obs/metrics.h"

namespace dmrpc::obs {

class SloMonitor;
class Tracer;

/// Timeline sampling configuration.
struct TimelineConfig {
  /// Virtual-time distance between samples. 0 disables sampling.
  TimeNs interval_ns = 0;
  /// Retained-window cap: windows past it are counted in
  /// dropped_windows() and discarded (runaway-run protection; the
  /// default covers a 60 s run at 1 ms resolution with headroom).
  size_t max_windows = 1 << 16;
};

/// One counter's view of a window: the cumulative total at the window's
/// end boundary, and the delta accumulated inside the window (the rate,
/// once divided by the interval).
struct WindowCounter {
  uint64_t total = 0;
  uint64_t delta = 0;
};

/// One gauge's view of a window: the level at the window's end boundary
/// and the cumulative high-watermark up to it (see Gauge::max()).
struct WindowGauge {
  int64_t value = 0;
  int64_t max = 0;
};

/// One timer's view of a window: summary of the quantile sketch holding
/// exactly the samples recorded inside the window, built by diffing the
/// cumulative histogram against the previous boundary's snapshot
/// (Histogram::Diff). Empty windows report all zeros.
struct WindowTimer {
  uint64_t count = 0;
  int64_t sum = 0;
  int64_t p50 = 0;
  int64_t p99 = 0;
  int64_t p999 = 0;
  int64_t max = 0;
};

/// One SLO objective's verdict for one window (see slo.h).
struct WindowSlo {
  std::string name;
  uint64_t bad = 0;
  uint64_t total = 0;
  /// Burn rate in thousandths: (bad/total)/budget * 1000, integer so the
  /// sidecar stays byte-stable. 1000 = burning the budget exactly.
  int64_t burn_milli = 0;
  bool breached = false;
};

/// One sampled window [start_ns, end_ns).
struct TimelineWindow {
  TimeNs start_ns = 0;
  TimeNs end_ns = 0;
  uint64_t events_executed = 0;  // cumulative at the boundary
  int64_t live_tasks = 0;        // level at the boundary
  std::map<std::string, WindowCounter> counters;
  std::map<std::string, WindowGauge> gauges;
  std::map<std::string, WindowTimer> timers;
  std::vector<WindowSlo> slo;
};

/// Virtual-time metrics sampler, owned by `sim::Simulation`.
///
/// When enabled, the engine flushes pending sample boundaries before
/// dispatching the first event at or past each boundary (and clamps
/// parallel windows so a boundary is never crossed inside one), giving
/// every boundary B one well-defined meaning on every engine path:
/// *the registry state after all events with t < B executed*. That makes
/// timeline sidecars byte-identical across seq/1/2/8 worker threads --
/// the same guarantee the metrics fingerprints carry, extended from one
/// end-of-run point to a time series.
///
/// Sampling is strictly read-only against the registry: it never
/// schedules events, never consumes randomness, and never registers or
/// writes metrics, so enabling it cannot perturb the simulated workload
/// (the zero-perturbation bar the tracer set). The one documented
/// exception is the SLO monitor, which registers `slo.<name>.breaches`
/// counters on the first breach of a configured objective -- the same
/// visible-only-when-it-happened policy as `obs.trace_dropped`.
class TimelineRecorder {
 public:
  /// Arms the sampler: boundaries at anchor + k * interval_ns, k >= 1.
  /// Call before running (re-arming mid-run restarts the grid).
  void Configure(const TimelineConfig& cfg, TimeNs anchor);

  bool enabled() const { return interval_ns_ > 0; }
  TimeNs interval_ns() const { return interval_ns_; }

  /// The next unsampled boundary, or TimeNs max when disabled. The
  /// engine caches this and compares each event's timestamp against it.
  TimeNs next_boundary() const { return next_boundary_; }

  /// Samples every pending boundary B <= t, in order. The caller must
  /// have folded any sharded counters first (Simulation::RunFoldHooks)
  /// so the registry reflects every executed event. `slo` and `tracer`
  /// may be null; `reg` is written only by the SLO monitor on breaches.
  void SampleUpTo(TimeNs t, MetricsRegistry* reg, uint64_t events_executed,
                  int64_t live_tasks, SloMonitor* slo, Tracer* tracer);

  const std::vector<TimelineWindow>& windows() const { return windows_; }
  /// Windows discarded past TimelineConfig::max_windows.
  uint64_t dropped_windows() const { return dropped_windows_; }

  /// Serializes every window as one JSON object per line (sorted keys,
  /// all-integer values: byte-stable across identically-seeded runs and
  /// across worker-thread counts). This is the `.timeline.jsonl`
  /// sidecar format.
  std::string ToJsonLines() const;

  /// Writes a Chrome trace_event / Perfetto counter-track file: one
  /// "ph":"C" event per window per selected series, so queue depths and
  /// per-window p99s render as counter tracks above the span timeline.
  /// `series` names counters/gauges/timers to plot (counters plot their
  /// window delta, gauges their level, timers their window p99); an
  /// empty list plots everything.
  void WriteCounterTrack(std::ostream& os,
                         const std::vector<std::string>& series = {}) const;

  /// Drops recorded windows and baseline snapshots but keeps the
  /// configuration and the boundary grid (benches reuse one recorder
  /// across phases).
  void Clear();

 private:
  void SampleOne(TimeNs boundary, MetricsRegistry* reg,
                 uint64_t events_executed, int64_t live_tasks,
                 SloMonitor* slo, Tracer* tracer);

  TimeNs interval_ns_ = 0;
  size_t max_windows_ = 0;
  TimeNs next_boundary_ = std::numeric_limits<TimeNs>::max();
  std::vector<TimelineWindow> windows_;
  uint64_t dropped_windows_ = 0;
  /// Previous-boundary snapshots for delta encoding.
  std::map<std::string, uint64_t> prev_counters_;
  std::map<std::string, Histogram> prev_timers_;
};

}  // namespace dmrpc::obs

#endif  // DMRPC_OBS_TIMELINE_H_
