#ifndef DMRPC_OBS_METRICS_H_
#define DMRPC_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "common/histogram.h"
#include "common/units.h"

namespace dmrpc::obs {

/// A monotonically increasing counter (packets sent, retransmits, COW
/// copies, ...). Incrementing is a plain uint64 add, so instrumented code
/// can leave counters enabled unconditionally.
class Counter {
 public:
  void Inc(uint64_t n = 1) { value_ += n; }
  uint64_t value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  uint64_t value_ = 0;
};

/// A point-in-time level (free frames, live sessions, queue depth), plus
/// its high-watermark: the largest value the gauge ever held, tracked on
/// every Set/Add. Levels usually drain back to zero by the end of a run
/// (queue depths, in-flight counts), so the final value alone says
/// nothing about the peak; max() is what the registry dump and the
/// timeline sampler report alongside it.
class Gauge {
 public:
  void Set(int64_t v) {
    value_ = v;
    if (v > max_) max_ = v;
  }
  void Add(int64_t delta) {
    value_ += delta;
    if (value_ > max_) max_ = value_;
  }
  int64_t value() const { return value_; }
  /// Largest value ever held (0 for a gauge that never went positive:
  /// the watermark starts at the initial value).
  int64_t max() const { return max_; }
  void Reset() {
    value_ = 0;
    max_ = 0;
  }

 private:
  int64_t value_ = 0;
  int64_t max_ = 0;
};

/// A Histogram-backed duration metric for virtual-time intervals (slot
/// wait, credit stall, handler runtime). Record() costs one histogram
/// bucket increment.
class Timer {
 public:
  void Record(TimeNs ns) { hist_.Record(ns); }
  const Histogram& hist() const { return hist_; }
  uint64_t count() const { return hist_.count(); }
  void Reset() { hist_.Reset(); }

 private:
  Histogram hist_;
};

/// A named collection of counters, gauges, and timers.
///
/// One registry is owned by each `sim::Simulation`, so every metric a run
/// produces is derived from the deterministic virtual-time execution:
/// two identically-seeded runs dump byte-identical JSON. Lookup by name
/// walks a map; instrumented hot paths call Get* once (typically at
/// construction) and cache the returned pointer, which stays valid for
/// the registry's lifetime.
///
/// Metric names are dot-separated, lower_snake_case, prefixed by layer:
/// `net.tx_packets`, `rpc.retransmits`, `dm.pool.cow_copies` (see
/// docs/ARCHITECTURE.md for the full naming scheme).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the metric named `name`, creating it at zero on first use.
  /// The pointer remains valid until the registry is destroyed.
  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Timer* GetTimer(std::string_view name);

  /// Read-side lookups for tests and reporting. Missing names read as
  /// zero / null rather than registering anything.
  uint64_t CounterValue(std::string_view name) const;
  int64_t GaugeValue(std::string_view name) const;
  const Timer* FindTimer(std::string_view name) const;

  size_t size() const {
    return counters_.size() + gauges_.size() + timers_.size();
  }

  /// Zeroes every metric but keeps registrations (and thus cached
  /// pointers) intact. Used between benchmark phases.
  void ResetValues();

  /// Read-only iteration in sorted name order (the dump order); used by
  /// the timeline sampler to snapshot the whole registry at a boundary.
  /// `fn` is called as fn(const std::string& name, const Metric&).
  template <typename Fn>
  void ForEachCounter(Fn&& fn) const {
    for (const auto& [name, c] : counters_) fn(name, c);
  }
  template <typename Fn>
  void ForEachGauge(Fn&& fn) const {
    for (const auto& [name, g] : gauges_) fn(name, g);
  }
  template <typename Fn>
  void ForEachTimer(Fn&& fn) const {
    for (const auto& [name, t] : timers_) fn(name, t);
  }

  /// Dumps every metric as a JSON object:
  ///   {"counters":{...},"gauges":{"name":{"value":..,"max":..}},
  ///    "timers":{"name":{"count":..,"sum":..,"min":..,"p50":..,...}}}
  /// Keys are sorted and all values are integers, so the output is
  /// byte-stable across identically-seeded runs and across platforms.
  std::string DumpJson() const;

 private:
  // std::map gives sorted, allocation-stable nodes: iteration order is
  // the dump order and element pointers never move.
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Timer, std::less<>> timers_;
};

}  // namespace dmrpc::obs

#endif  // DMRPC_OBS_METRICS_H_
