#include "obs/metrics.h"

#include <sstream>

namespace dmrpc::obs {

namespace {

/// JSON string escaping for metric names (names are expected to be plain
/// identifiers; this keeps the dump well-formed even if they are not).
void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), Counter()).first;
  }
  return &it->second;
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), Gauge()).first;
  }
  return &it->second;
}

Timer* MetricsRegistry::GetTimer(std::string_view name) {
  auto it = timers_.find(name);
  if (it == timers_.end()) {
    it = timers_.emplace(std::string(name), Timer()).first;
  }
  return &it->second;
}

uint64_t MetricsRegistry::CounterValue(std::string_view name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.value();
}

int64_t MetricsRegistry::GaugeValue(std::string_view name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second.value();
}

const Timer* MetricsRegistry::FindTimer(std::string_view name) const {
  auto it = timers_.find(name);
  return it == timers_.end() ? nullptr : &it->second;
}

void MetricsRegistry::ResetValues() {
  for (auto& [name, c] : counters_) c.Reset();
  for (auto& [name, g] : gauges_) g.Reset();
  for (auto& [name, t] : timers_) t.Reset();
}

std::string MetricsRegistry::DumpJson() const {
  std::string out;
  out.reserve(256 + 48 * size());
  out += "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ",";
    first = false;
    AppendJsonString(&out, name);
    out += ":";
    out += std::to_string(c.value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ",";
    first = false;
    AppendJsonString(&out, name);
    // Level plus high-watermark: depths and in-flight counts drain to 0
    // by run end, so the peak is the number that actually means anything.
    out += ":{\"value\":" + std::to_string(g.value());
    out += ",\"max\":" + std::to_string(g.max());
    out += "}";
  }
  out += "},\"timers\":{";
  first = true;
  for (const auto& [name, t] : timers_) {
    if (!first) out += ",";
    first = false;
    AppendJsonString(&out, name);
    const Histogram& h = t.hist();
    // All-integer summary: byte-stable across runs and platforms
    // (doubles such as mean() are derivable as sum/count offline).
    out += ":{\"count\":" + std::to_string(h.count());
    out += ",\"sum\":" + std::to_string(h.sum());
    out += ",\"min\":" + std::to_string(h.min());
    out += ",\"p50\":" + std::to_string(h.p50());
    out += ",\"p90\":" + std::to_string(h.p90());
    out += ",\"p99\":" + std::to_string(h.p99());
    out += ",\"p999\":" + std::to_string(h.p999());
    out += ",\"max\":" + std::to_string(h.max());
    out += "}";
  }
  out += "}}";
  return out;
}

}  // namespace dmrpc::obs
