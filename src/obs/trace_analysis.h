#ifndef DMRPC_OBS_TRACE_ANALYSIS_H_
#define DMRPC_OBS_TRACE_ANALYSIS_H_

#include <cstdint>
#include <istream>
#include <map>
#include <string>
#include <vector>

#include "common/units.h"
#include "obs/trace.h"

namespace dmrpc::obs {

/// One reconstructed span of a distributed request: a begin/end record
/// pair stitched back together, with its place in the causal tree.
struct SpanNode {
  uint64_t id = 0;
  uint64_t trace_id = 0;
  uint64_t parent_id = 0;  // 0 = root of its trace
  uint32_t track = 0;      // node id (hop)
  TimeNs start = 0;
  TimeNs end = 0;
  bool closed = false;  // an end record was seen
  std::string cat;      // layer: "app", "msvc", "rpc", "dmrpc", "dm", "net"
  std::string name;
  std::string args;  // JSON object as recorded, or empty
  std::vector<size_t> children;  // indices into TraceAnalysis::spans()

  TimeNs duration() const { return end - start; }
};

/// Structural verdict on a span forest. A healthy trace dump has every
/// begun span closed, every non-root span's parent present in the same
/// trace, exactly one root per trace, and every child interval nested
/// inside its parent's interval in virtual time -- except detached
/// continuations (work spawned off the request path, e.g. a deferred
/// Ref release), which begin at or after their parent's end and are
/// counted separately in `async_children`.
struct WellFormedness {
  size_t traces = 0;
  size_t spans = 0;
  size_t instants = 0;
  size_t unclosed = 0;
  size_t orphans = 0;           // parent id names no span in the dump
  size_t cross_trace = 0;       // parent exists but in a different trace
  size_t multi_root_traces = 0; // traces with != 1 root span
  size_t interval_violations = 0;
  size_t async_children = 0;    // follow-up spans (start >= parent end)
  size_t dropped = 0;           // from the dump's metadata line
  /// Human-readable descriptions of the first few problems found.
  std::vector<std::string> problems;

  bool ok() const {
    return unclosed == 0 && orphans == 0 && cross_trace == 0 &&
           multi_root_traces == 0 && interval_violations == 0 && dropped == 0;
  }
};

/// Per-request latency decomposition. Every virtual nanosecond of the
/// root span's duration is attributed to exactly one span on the
/// critical path (the deepest span covering that instant on the backward
/// walk from the request's completion), so the per-layer and per-hop
/// sums each equal the end-to-end latency exactly.
struct RequestBreakdown {
  uint64_t trace_id = 0;
  TimeNs latency = 0;  // root span duration = end-to-end virtual latency
  std::string root_name;
  std::string root_args;
  bool by_ref = false;  // any dmrpc span in the trace chose pass-by-ref
  std::map<std::string, TimeNs> by_layer;  // cat -> critical-path self time
  std::map<uint32_t, TimeNs> by_hop;       // track -> critical-path self time
  uint64_t wire_bytes = 0;    // sum of "bytes" args on rpc.call spans
  uint64_t copied_bytes = 0;  // sum of "copied" args across the trace
};

/// Aggregate view over many requests: latency quantiles and per-layer /
/// per-hop totals, split by the pass-by-reference decision.
struct BreakdownAggregate {
  size_t requests = 0;
  TimeNs total_latency = 0;
  TimeNs p50 = 0, p95 = 0, p99 = 0, max = 0;
  std::map<std::string, TimeNs> by_layer;
  std::map<uint32_t, TimeNs> by_hop;
  uint64_t wire_bytes = 0;
  uint64_t copied_bytes = 0;
};

/// Reconstructs span trees from a trace (in-memory records or a JSONL
/// dump), verifies their structure, and computes critical-path latency
/// breakdowns. Deterministic by construction: identical inputs produce
/// byte-identical reports.
class TraceAnalysis {
 public:
  /// Ingests the tracer's in-memory records directly (bench sidecars).
  /// `dropped` is the tracer's shed-record count; a nonzero value marks
  /// the analysis as operating on a truncated trace.
  void AddRecords(const std::vector<TraceRecord>& records,
                  size_t dropped = 0);

  /// Parses a WriteJsonLines dump. Returns false (with *error set) on a
  /// line that is not one of the tracer's record shapes; unknown keys
  /// are ignored so the format can grow.
  bool ParseJsonLines(std::istream& is, std::string* error);

  /// Stitches begin/end records into SpanNodes and indexes the forest.
  /// Must be called after ingestion, before any query below.
  void Build();

  const std::vector<SpanNode>& spans() const { return spans_; }
  size_t dropped() const { return dropped_; }

  /// Structural checks over the whole forest (spans with trace_id 0 --
  /// background activity outside any request -- are exempt from the
  /// per-trace checks but still checked for closure).
  WellFormedness Check() const;

  /// One breakdown per trace that has exactly one closed root span.
  /// Sorted by trace id, so reports are stable across identical runs.
  std::vector<RequestBreakdown> Breakdowns() const;

  /// Aggregates breakdowns; key "all" plus "by_ref" / "by_value" splits.
  static std::map<std::string, BreakdownAggregate> Aggregate(
      const std::vector<RequestBreakdown>& breakdowns);

  /// The full text report: well-formedness summary, aggregate tables,
  /// and per-layer critical-path percentages. Byte-stable for identical
  /// inputs.
  std::string TextReport() const;

  /// Reads an integer value for `key` out of a span's recorded JSON args
  /// (e.g. bytes, copied, by_ref). Returns `fallback` when absent.
  static uint64_t ArgValue(const std::string& args, const std::string& key,
                           uint64_t fallback = 0);

 private:
  void AttributeCriticalPath(size_t idx, TimeNs end, TimeNs floor,
                             RequestBreakdown* out) const;

  std::vector<TraceRecord> records_;
  std::vector<SpanNode> spans_;
  std::map<uint64_t, size_t> span_index_;  // span id -> index in spans_
  size_t instants_ = 0;
  size_t dropped_ = 0;
  bool built_ = false;
};

}  // namespace dmrpc::obs

#endif  // DMRPC_OBS_TRACE_ANALYSIS_H_
