// Ablation: software address-translation overhead in DmRPC-net (paper
// §V-A2: "the first software-based translation only accounts for 0.17%
// of the total DM access time").
//
// Measures rread of various sizes and reports the hash-table translation
// time as a fraction of (a) server-side handler time and (b) end-to-end
// client-observed access time (the paper's denominator, which includes
// the network round trip).

#include <benchmark/benchmark.h>

#include <map>
#include <vector>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "dmnet/client.h"
#include "dmnet/protocol.h"
#include "dmnet/server.h"
#include "msvc/workload.h"
#include "net/fabric.h"
#include "sim/simulation.h"

namespace dmrpc::bench {
namespace {

struct Outcome {
  double server_fraction = 0.0;  // translation / handler time
  double e2e_fraction = 0.0;     // translation / client-observed time
  double access_us = 0.0;
};

std::map<uint32_t, Outcome>& Cache() {
  static auto* cache = new std::map<uint32_t, Outcome>();
  return *cache;
}

const Outcome& RunOne(uint32_t size) {
  auto it = Cache().find(size);
  if (it != Cache().end()) return it->second;

  sim::Simulation sim(23);
  BenchObs::Arm(&sim);
  net::Fabric fabric(&sim, net::NetworkConfig{}, 2);
  dmnet::DmServerConfig scfg;
  scfg.num_frames = 1u << 15;
  dmnet::DmServer server(&fabric, 1, dmnet::kDmServerPort, scfg,
                         uint64_t{1} << 44);
  rpc::Rpc rpc(&fabric, 0, 1000);
  dmnet::DmNetClient client(
      &rpc, {{1, dmnet::kDmServerPort, uint64_t{1} << 44, uint64_t{1} << 44}});

  Outcome out;
  constexpr int kIters = 200;
  Status st = msvc::RunToCompletion(
      &sim,
      [&]() -> sim::Task<Status> {
        Status init = co_await client.Init();
        if (!init.ok()) co_return init;
        auto va = co_await client.Alloc(size);
        if (!va.ok()) co_return va.status();
        std::vector<uint8_t> buf(size, 1);
        (void)co_await client.Write(*va, buf.data(), size);
        server.ResetStats();
        TimeNs start = sim::Simulation::Current()->Now();
        for (int i = 0; i < kIters; ++i) {
          Status r = co_await client.Read(*va, buf.data(), size);
          if (!r.ok()) co_return r;
        }
        TimeNs e2e = sim::Simulation::Current()->Now() - start;
        out.server_fraction =
            static_cast<double>(server.stats().translation_ns) /
            static_cast<double>(server.stats().access_ns);
        out.e2e_fraction =
            static_cast<double>(server.stats().translation_ns) /
            static_cast<double>(e2e);
        out.access_us = static_cast<double>(e2e) / kIters / 1e3;
        co_return Status::OK();
      }(),
      60 * kSecond);
  DMRPC_CHECK(st.ok()) << st.ToString();
  BenchObs::Record("read_" + std::to_string(size) + "B", &sim);
  return Cache().emplace(size, out).first->second;
}

constexpr uint32_t kSizes[] = {4096, 16384, 65536, 262144};

void BM_Translation(benchmark::State& state) {
  uint32_t size = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    const Outcome& out = RunOne(size);
    state.counters["server_pct"] = out.server_fraction * 100.0;
    state.counters["e2e_pct"] = out.e2e_fraction * 100.0;
    state.counters["access_us"] = out.access_us;
  }
}

void RegisterAll() {
  for (uint32_t size : kSizes) {
    benchmark::RegisterBenchmark("abl/translation_cost", BM_Translation)
        ->Arg(size)
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

void PrintPaperTables() {
  Table table(
      "Ablation: software translation cost in rread (paper claims 0.17% "
      "of total DM access time)",
      {"size", "access-us", "server-side %", "end-to-end %"});
  for (uint32_t size : kSizes) {
    const Outcome& out = RunOne(size);
    table.AddRow({FormatBytes(size), Table::Num(out.access_us, 2),
                  Table::Num(out.server_fraction * 100.0, 3),
                  Table::Num(out.e2e_fraction * 100.0, 3)});
  }
  table.Print();
}

}  // namespace
}  // namespace dmrpc::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  dmrpc::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  dmrpc::bench::PrintPaperTables();
  return 0;
}
