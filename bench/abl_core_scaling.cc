// Ablation: DM-server core scaling (paper §VI-E: "the system throughput
// increases almost linearly with the number of used CPU cores").
//
// Drives one DmRPC-net DM server with a deep window of PutRef/FetchRef
// pairs (the producer/consumer hot path) while sweeping its worker core
// count, and reports the speedup relative to a single core. Also sweeps
// the paper's future-work MMU-direct translation mode (§V-A2) to show
// what removing the software translation would buy.

#include <benchmark/benchmark.h>

#include <map>
#include <vector>

#include "apps/image_pipeline.h"
#include "bench/bench_util.h"
#include "common/logging.h"
#include "dmnet/client.h"
#include "dmnet/protocol.h"
#include "dmnet/server.h"
#include "msvc/cluster.h"
#include "msvc/workload.h"
#include "net/fabric.h"
#include "sim/simulation.h"

namespace dmrpc::bench {
namespace {

constexpr uint32_t kBlockBytes = 16384;

std::map<std::pair<int, bool>, double>& Cache() {
  static auto* cache = new std::map<std::pair<int, bool>, double>();
  return *cache;
}

double RunOne(int cores, bool mmu_direct) {
  auto key = std::make_pair(cores, mmu_direct);
  auto it = Cache().find(key);
  if (it != Cache().end()) return it->second;

  BenchEnv env = BenchEnv::FromEnv();
  sim::Simulation sim(24);
  BenchObs::Arm(&sim);
  net::Fabric fabric(&sim, net::NetworkConfig{}, 3);
  dmnet::DmServerConfig scfg;
  scfg.num_frames = 1u << 16;
  scfg.cores = cores;
  scfg.mmu_direct_translation = mmu_direct;
  dmnet::DmServer server(&fabric, 2, dmnet::kDmServerPort, scfg,
                         uint64_t{1} << 44);
  // Two client hosts so the server, not a client NIC, is the bottleneck.
  rpc::Rpc rpc_a(&fabric, 0, 1000);
  rpc::Rpc rpc_b(&fabric, 1, 1000);
  std::vector<dmnet::DmServerAddr> addrs{
      {2, dmnet::kDmServerPort, uint64_t{1} << 44, uint64_t{1} << 44}};
  dmnet::DmNetClient client_a(&rpc_a, addrs);
  dmnet::DmNetClient client_b(&rpc_b, addrs);

  Status st = msvc::RunToCompletion(&sim, [&]() -> sim::Task<Status> {
    Status a = co_await client_a.Init();
    if (!a.ok()) co_return a;
    co_return co_await client_b.Init();
  }());
  DMRPC_CHECK(st.ok()) << st.ToString();

  std::vector<uint8_t> block(kBlockBytes, 0x66);
  auto counter = std::make_shared<int>(0);
  msvc::RequestFn fn = [&, counter]() -> sim::Task<StatusOr<uint64_t>> {
    dmnet::DmNetClient* producer =
        (*counter)++ % 2 == 0 ? &client_a : &client_b;
    dmnet::DmNetClient* consumer =
        producer == &client_a ? &client_b : &client_a;
    auto ref = co_await producer->PutRef(block.data(), block.size());
    if (!ref.ok()) co_return ref.status();
    auto data = co_await consumer->FetchRef(*ref);
    if (!data.ok()) co_return data.status();
    Status rs = co_await consumer->ReleaseRef(*ref);
    if (!rs.ok()) co_return rs;
    co_return uint64_t{kBlockBytes};
  };
  msvc::WorkloadResult res = msvc::RunClosedLoop(
      &sim, fn, /*workers=*/32, env.Warmup(10 * kMillisecond),
      env.Measure(150 * kMillisecond));
  BenchObs::Record(std::string(mmu_direct ? "mmu-direct" : "sw") + "_cores" +
                       std::to_string(cores),
                   &sim);
  return Cache().emplace(key, res.throughput_rps()).first->second;
}

constexpr int kCores[] = {1, 2, 4, 8};

/// The paper's actual linear-scaling claim (§VI-E): the image app on
/// DmRPC-CXL is bound by application CPU cores, not UPI or network.
std::map<int, double>& AppCache() {
  static auto* cache = new std::map<int, double>();
  return *cache;
}

double RunImageApp(int codec_threads) {
  auto it = AppCache().find(codec_threads);
  if (it != AppCache().end()) return it->second;
  BenchEnv env = BenchEnv::FromEnv();
  sim::Simulation sim(25);
  BenchObs::Arm(&sim);
  msvc::ClusterConfig cfg;
  cfg.backend = msvc::Backend::kDmCxl;
  cfg.num_nodes = 10;
  cfg.dm_frames = 1u << 16;
  msvc::Cluster cluster(&sim, cfg);
  apps::ImagePipelineConfig pcfg;
  pcfg.codec_threads = codec_threads;
  apps::ImagePipelineApp app(&cluster, {1, 2, 3, 4, 5, 6}, pcfg);
  msvc::ServiceEndpoint* client = cluster.AddService("client", 0, 1000, 8);
  Status st = msvc::RunToCompletion(&sim, cluster.InitAll());
  if (!st.ok()) LOG_FATAL << "init: " << st.ToString();
  msvc::WorkloadResult res = msvc::RunClosedLoop(
      &sim, app.MakeRequestFn(client, 65536), /*workers=*/8 * codec_threads,
      env.Warmup(30 * kMillisecond), env.Measure(200 * kMillisecond));
  BenchObs::Record("image-app_codec" + std::to_string(codec_threads), &sim);
  return AppCache().emplace(codec_threads, res.throughput_gbps())
      .first->second;
}

void BM_CoreScaling(benchmark::State& state) {
  int cores = static_cast<int>(state.range(0));
  bool mmu = state.range(1) != 0;
  for (auto _ : state) {
    state.counters["krps"] = RunOne(cores, mmu) / 1e3;
    state.counters["speedup"] = RunOne(cores, mmu) / RunOne(1, mmu);
  }
  state.SetLabel(mmu ? "mmu-direct" : "sw-translation");
}

void RegisterAll() {
  for (int cores : kCores) {
    for (int mmu : {0, 1}) {
      benchmark::RegisterBenchmark("abl/core_scaling", BM_CoreScaling)
          ->Args({cores, mmu})
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

void PrintPaperTables() {
  Table table(
      "Ablation: DM-server core scaling (16KB PutRef+FetchRef pairs)",
      {"cores", "krps", "speedup", "krps(mmu-direct)", "mmu-gain"});
  for (int cores : kCores) {
    double sw = RunOne(cores, false);
    double mmu = RunOne(cores, true);
    table.AddRow({Table::Int(cores), Table::Num(sw / 1e3),
                  Table::Num(sw / RunOne(1, false), 2) + "x",
                  Table::Num(mmu / 1e3),
                  Table::Num(sw > 0 ? mmu / sw : 0, 3) + "x"});
  }
  table.Print();

  Table app(
      "Paper §VI-E claim: image app (DmRPC-CXL, 64KB) scales with codec "
      "cores",
      {"codec-cores", "Gbps", "speedup"});
  for (int cores : kCores) {
    app.AddRow({Table::Int(cores), Table::Num(RunImageApp(cores), 2),
                Table::Num(RunImageApp(cores) / RunImageApp(1), 2) + "x"});
  }
  app.Print();
}

}  // namespace
}  // namespace dmrpc::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  dmrpc::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  dmrpc::bench::PrintPaperTables();
  return 0;
}
