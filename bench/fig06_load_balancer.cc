// Reproduces Fig. 6 (paper §VI-B): an application-layer load balancer
// forwarding requests from three client hosts to three worker hosts.
//   6a: sustained request rate vs request size (4K-32K).
//   6b: memory bandwidth consumed on the LB host.
//
// Expected shape: with eRPC both the achievable rate drops and the LB
// host's memory bandwidth grows with request size (every byte is DMA'd
// in and out of its DRAM); with DmRPC the LB forwards ~30-byte Refs, so
// its rate is size-independent and its memory traffic near zero.

#include <benchmark/benchmark.h>

#include <map>

#include "apps/load_balancer.h"
#include "bench/bench_util.h"
#include "common/logging.h"
#include "msvc/cluster.h"
#include "msvc/workload.h"

namespace dmrpc::bench {
namespace {

constexpr net::NodeId kLbNode = 3;

struct LbOutcome {
  msvc::WorkloadResult result;
  double lb_gbytes_per_s = 0.0;
  double lb_bytes_per_req = 0.0;
};

std::map<std::pair<int, uint32_t>, LbOutcome>& Cache() {
  static auto* cache = new std::map<std::pair<int, uint32_t>, LbOutcome>();
  return *cache;
}

const LbOutcome& RunLb(msvc::Backend backend, uint32_t req_bytes) {
  auto key = std::make_pair(static_cast<int>(backend), req_bytes);
  auto it = Cache().find(key);
  if (it != Cache().end()) return it->second;

  BenchEnv env = BenchEnv::FromEnv();
  sim::Simulation sim(6);
  BenchObs::Arm(&sim);
  msvc::ClusterConfig cfg;
  cfg.backend = backend;
  cfg.num_nodes = 12;  // 3 clients, LB, 3 workers, spares, 2 DM hosts
  cfg.dm_frames = 1u << 15;
  msvc::Cluster cluster(&sim, cfg);
  apps::LoadBalancerApp app(&cluster, kLbNode, {4, 5, 6});
  // Three generator hosts, as in the paper.
  std::vector<msvc::ServiceEndpoint*> clients;
  for (net::NodeId n : {0u, 1u, 2u}) {
    clients.push_back(
        cluster.AddService("client" + std::to_string(n), n, 1000));
  }
  Status st = msvc::RunToCompletion(&sim, cluster.InitAll());
  if (!st.ok()) LOG_FATAL << "init: " << st.ToString();

  // Spread a window of 8 outstanding requests over each client host.
  auto counter = std::make_shared<size_t>(0);
  msvc::RequestFn fn =
      [&app, clients, counter,
       req_bytes]() -> sim::Task<StatusOr<uint64_t>> {
    msvc::ServiceEndpoint* client = clients[(*counter)++ % clients.size()];
    return app.DoRequest(client, req_bytes);
  };
  TimeNs measure = env.Measure(250 * kMillisecond);
  uint64_t lb_bytes = 0;
  msvc::WindowHooks hooks;
  hooks.on_measure_start = [&cluster] {
    cluster.node_meter(kLbNode)->Reset();
  };
  hooks.on_measure_end = [&cluster, &lb_bytes] {
    lb_bytes = cluster.node_meter(kLbNode)->dram_bytes();
  };
  LbOutcome out;
  out.result =
      msvc::RunClosedLoop(&sim, fn, /*workers=*/24,
                          env.Warmup(20 * kMillisecond), measure, hooks);
  out.lb_gbytes_per_s =
      static_cast<double>(lb_bytes) / static_cast<double>(measure);
  out.lb_bytes_per_req =
      out.result.completed == 0
          ? 0.0
          : static_cast<double>(lb_bytes) / out.result.completed;
  BenchObs::Record(std::string(msvc::BackendName(backend)) + "_" +
                       std::to_string(req_bytes) + "B",
                   &sim);
  return Cache().emplace(key, std::move(out)).first->second;
}

void BM_LoadBalancer(benchmark::State& state) {
  auto backend = static_cast<msvc::Backend>(state.range(0));
  uint32_t bytes = static_cast<uint32_t>(state.range(1));
  for (auto _ : state) {
    const LbOutcome& out = RunLb(backend, bytes);
    state.counters["krps"] = out.result.throughput_rps() / 1000.0;
    state.counters["lb_GBps"] = out.lb_gbytes_per_s;
  }
  state.SetLabel(msvc::BackendName(backend));
}

void RegisterAll() {
  for (msvc::Backend backend :
       {msvc::Backend::kErpc, msvc::Backend::kDmNet, msvc::Backend::kDmCxl}) {
    for (uint32_t bytes : {4096u, 8192u, 16384u, 32768u}) {
      benchmark::RegisterBenchmark("fig06/load_balancer", BM_LoadBalancer)
          ->Args({static_cast<int64_t>(backend), bytes})
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

void PrintPaperTables() {
  Table tput("Fig 6a: LB request rate (krps) vs request size",
             {"size", "eRPC", "DmRPC-net", "DmRPC-CXL"});
  Table bw("Fig 6b: LB-server memory bandwidth (GB/s)",
           {"size", "eRPC", "DmRPC-net", "DmRPC-CXL"});
  Table per("Fig 6b': LB-server memory traffic per request (bytes)",
            {"size", "eRPC", "DmRPC-net", "DmRPC-CXL"});
  for (uint32_t bytes : {4096u, 8192u, 16384u, 32768u}) {
    const LbOutcome& erpc = RunLb(msvc::Backend::kErpc, bytes);
    const LbOutcome& net = RunLb(msvc::Backend::kDmNet, bytes);
    const LbOutcome& cxl = RunLb(msvc::Backend::kDmCxl, bytes);
    tput.AddRow({FormatBytes(bytes),
                 Table::Num(erpc.result.throughput_rps() / 1e3),
                 Table::Num(net.result.throughput_rps() / 1e3),
                 Table::Num(cxl.result.throughput_rps() / 1e3)});
    bw.AddRow({FormatBytes(bytes), Table::Num(erpc.lb_gbytes_per_s, 2),
               Table::Num(net.lb_gbytes_per_s, 2),
               Table::Num(cxl.lb_gbytes_per_s, 2)});
    per.AddRow({FormatBytes(bytes), Table::Num(erpc.lb_bytes_per_req, 0),
                Table::Num(net.lb_bytes_per_req, 0),
                Table::Num(cxl.lb_bytes_per_req, 0)});
  }
  tput.Print();
  bw.Print();
  per.Print();
}

}  // namespace
}  // namespace dmrpc::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  dmrpc::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  dmrpc::bench::PrintPaperTables();
  return 0;
}
