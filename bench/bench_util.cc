#include "bench/bench_util.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/logging.h"

namespace dmrpc::bench {

Table::Table(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {}

void Table::AddRow(std::vector<std::string> cells) {
  DMRPC_CHECK_EQ(cells.size(), columns_.size());
  rows_.push_back(std::move(cells));
}

void Table::Print() const {
  std::vector<size_t> widths(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::printf("\n=== %s ===\n", title_.c_str());
  for (size_t c = 0; c < columns_.size(); ++c) {
    std::printf("%-*s  ", static_cast<int>(widths[c]), columns_[c].c_str());
  }
  std::printf("\n");
  for (size_t c = 0; c < columns_.size(); ++c) {
    std::printf("%s  ", std::string(widths[c], '-').c_str());
  }
  std::printf("\n");
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      std::printf("%-*s  ", static_cast<int>(widths[c]), row[c].c_str());
    }
    std::printf("\n");
  }
  std::fflush(stdout);
}

std::string Table::Num(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string Table::Int(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  return buf;
}

BenchEnv BenchEnv::FromEnv() {
  BenchEnv env;
  if (const char* s = std::getenv("DMRPC_BENCH_SCALE")) {
    double v = std::atof(s);
    if (v > 0.0) env.scale = v;
  }
  return env;
}

std::string Summarize(const msvc::WorkloadResult& res) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%.0f rps, %.2f Gbps, lat mean=%s p99=%s p999=%s",
                res.throughput_rps(), res.throughput_gbps(),
                FormatDuration(res.latency.mean()).c_str(),
                FormatDuration(res.latency.p99()).c_str(),
                FormatDuration(res.latency.p999()).c_str());
  return buf;
}

}  // namespace dmrpc::bench
