#include "bench/bench_util.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <utility>

#include "common/logging.h"
#include "obs/trace_analysis.h"

namespace dmrpc::bench {

Table::Table(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {}

void Table::AddRow(std::vector<std::string> cells) {
  DMRPC_CHECK_EQ(cells.size(), columns_.size());
  rows_.push_back(std::move(cells));
}

void Table::Print() const {
  std::vector<size_t> widths(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::printf("\n=== %s ===\n", title_.c_str());
  for (size_t c = 0; c < columns_.size(); ++c) {
    std::printf("%-*s  ", static_cast<int>(widths[c]), columns_[c].c_str());
  }
  std::printf("\n");
  for (size_t c = 0; c < columns_.size(); ++c) {
    std::printf("%s  ", std::string(widths[c], '-').c_str());
  }
  std::printf("\n");
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      std::printf("%-*s  ", static_cast<int>(widths[c]), row[c].c_str());
    }
    std::printf("\n");
  }
  std::fflush(stdout);
}

std::string Table::Num(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string Table::Int(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  return buf;
}

BenchEnv BenchEnv::FromEnv() {
  BenchEnv env;
  if (const char* s = std::getenv("DMRPC_BENCH_SCALE")) {
    double v = std::atof(s);
    if (v > 0.0) env.scale = v;
  }
  return env;
}

namespace {

/// Executable base name, used to name the sidecar files.
std::string BenchName() {
  char buf[4096];
  ssize_t n = readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return "bench";
  buf[n] = '\0';
  std::string path(buf);
  size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

/// Keeps labels filesystem-safe.
std::string SanitizeLabel(const std::string& label) {
  std::string out = label;
  for (char& c : out) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '-' || c == '.';
    if (!ok) c = '_';
  }
  return out;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

/// Label -> metrics JSON, in Record() order; flushed by an atexit hook so
/// a bench's several runs land in one file.
std::vector<std::pair<std::string, std::string>>& PendingRuns() {
  static std::vector<std::pair<std::string, std::string>> runs;
  return runs;
}

void WriteMetricsSidecar(bool announce) {
  auto& runs = PendingRuns();
  if (runs.empty()) return;
  std::string path;
  if (const char* p = std::getenv("DMRPC_METRICS_PATH")) {
    path = p;
  } else {
    path = BenchName() + ".metrics.json";
  }
  std::ofstream out(path);
  if (!out) {
    LOG_WARN << "cannot write metrics sidecar " << path;
    return;
  }
  out << "{\"bench\":\"" << JsonEscape(BenchName()) << "\",\"runs\":{";
  for (size_t i = 0; i < runs.size(); ++i) {
    if (i > 0) out << ",";
    out << "\"" << JsonEscape(runs[i].first) << "\":" << runs[i].second;
  }
  out << "}}\n";
  if (announce) {
    std::printf("[obs] wrote %s (%zu runs)\n", path.c_str(), runs.size());
  }
}

void AnnounceMetricsSidecar() { WriteMetricsSidecar(/*announce=*/true); }

}  // namespace

void BenchObs::Arm(sim::Simulation* sim) {
  if (std::getenv("DMRPC_TRACE_DIR") != nullptr) {
    sim->tracer().set_enabled(true);
    // A bench run records a few records per request across every layer;
    // the default limit sheds records on the bigger scenarios, which
    // truncates span trees and fails trace_analyze --check. 8M records
    // covers the largest fig* run at CI scale with headroom.
    sim->tracer().set_limit(size_t{1} << 23);
  }
  if (const char* us = std::getenv("DMRPC_TIMELINE_US")) {
    long long v = std::atoll(us);
    if (v > 0) {
      obs::TimelineConfig cfg;
      cfg.interval_ns = static_cast<TimeNs>(v) * kMicrosecond;
      sim->EnableTimeline(cfg);
    }
  }
}

void BenchObs::Record(const std::string& label, sim::Simulation* sim) {
  auto& runs = PendingRuns();
  if (runs.empty()) std::atexit(AnnounceMetricsSidecar);
  runs.emplace_back(label, sim->DumpMetricsJson());
  // Rewritten after every run (not only at exit) so the runs recorded so
  // far survive a later scenario aborting the process.
  WriteMetricsSidecar(/*announce=*/false);

  const char* dir = std::getenv("DMRPC_TRACE_DIR");
  if (dir != nullptr && !sim->tracer().records().empty()) {
    std::string base =
        std::string(dir) + "/" + BenchName() + "_" + SanitizeLabel(label);
    std::string path = base + ".trace.json";
    std::ofstream out(path);
    if (out) {
      sim->tracer().WriteChromeTrace(out);
      std::printf("[obs] wrote %s (%zu events)\n", path.c_str(),
                  sim->tracer().records().size());
    } else {
      LOG_WARN << "cannot write trace " << path;
    }
    std::string jsonl_path = base + ".trace.jsonl";
    std::ofstream jsonl(jsonl_path);
    if (jsonl) {
      sim->tracer().WriteJsonLines(jsonl);
    } else {
      LOG_WARN << "cannot write trace " << jsonl_path;
    }
    // Per-run latency-breakdown sidecar: span trees reconstructed from
    // this run's records, critical paths attributed per layer and hop.
    obs::TraceAnalysis analysis;
    analysis.AddRecords(sim->tracer().records(), sim->tracer().dropped());
    analysis.Build();
    std::string report_path = base + ".breakdown.txt";
    std::ofstream report(report_path);
    if (report) {
      report << analysis.TextReport();
      std::printf("[obs] wrote %s\n", report_path.c_str());
    } else {
      LOG_WARN << "cannot write breakdown " << report_path;
    }
    sim->tracer().Clear();
  }

  if (sim->timeline().enabled() && !sim->timeline().windows().empty()) {
    const char* tl_dir = std::getenv("DMRPC_TIMELINE_DIR");
    std::string base = (tl_dir != nullptr ? std::string(tl_dir) + "/" : "") +
                       BenchName() + "_" + SanitizeLabel(label);
    std::string tl_path = base + ".timeline.jsonl";
    std::ofstream tl(tl_path);
    if (tl) {
      tl << sim->timeline().ToJsonLines();
      std::printf("[obs] wrote %s (%zu windows)\n", tl_path.c_str(),
                  sim->timeline().windows().size());
    } else {
      LOG_WARN << "cannot write timeline " << tl_path;
    }
    std::string ct_path = base + ".counters.json";
    std::ofstream ct(ct_path);
    if (ct) {
      sim->timeline().WriteCounterTrack(ct);
    } else {
      LOG_WARN << "cannot write counter track " << ct_path;
    }
    // Windows already serialized must not leak into the next labelled
    // run's sidecar (the boundary grid itself stays armed).
    sim->timeline().Clear();
  }
}

std::string Summarize(const msvc::WorkloadResult& res) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%.0f rps, %.2f Gbps, lat mean=%s p99=%s p999=%s",
                res.throughput_rps(), res.throughput_gbps(),
                FormatDuration(res.latency.mean()).c_str(),
                FormatDuration(res.latency.p99()).c_str(),
                FormatDuration(res.latency.p999()).c_str());
  return buf;
}

}  // namespace dmrpc::bench
