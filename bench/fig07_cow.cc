// Reproduces Fig. 7 (paper §VI-C): the effect of the copy-on-write
// mechanism on create_ref.
//   7a: create_ref request rate vs request size.
//   7b: create_ref response time vs request size.
//   7c: DM memory traffic per request vs request size.
// Variants: DmRPC-net / DmRPC-net-copy (eager copy at create_ref time,
// one DM-server core) and DmRPC-CXL / DmRPC-CXL-copy (one client thread).
//
// Expected shape: the -copy variants' response time and memory traffic
// grow linearly with size (they duplicate every page eagerly), while the
// COW variants pay only a refcount increment per page.

#include <benchmark/benchmark.h>

#include <map>
#include <vector>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "cxl/coordinator.h"
#include "cxl/host_dm.h"
#include "dmnet/client.h"
#include "dmnet/protocol.h"
#include "dmnet/server.h"
#include "msvc/workload.h"
#include "net/fabric.h"
#include "sim/simulation.h"

namespace dmrpc::bench {
namespace {

enum class Variant {
  kNet = 0,
  kNetCopy = 1,
  kCxl = 2,
  kCxlCopy = 3,
};

const char* VariantName(Variant v) {
  switch (v) {
    case Variant::kNet:
      return "DmRPC-net";
    case Variant::kNetCopy:
      return "DmRPC-net-copy";
    case Variant::kCxl:
      return "DmRPC-CXL";
    case Variant::kCxlCopy:
      return "DmRPC-CXL-copy";
  }
  return "?";
}

struct CowOutcome {
  double krps = 0.0;           // create_ref request rate
  double response_us = 0.0;    // mean create_ref response time
  double traffic_per_req = 0;  // DM memory bytes per create_ref
};

std::map<std::pair<int, uint32_t>, CowOutcome>& Cache() {
  static auto* cache = new std::map<std::pair<int, uint32_t>, CowOutcome>();
  return *cache;
}

/// Measures create_ref on the network backend: one client saturating one
/// DM-server core with a window of outstanding create_ref calls; refs are
/// released in batches outside the timed path by a second (untimed)
/// session... releases still consume the core, so the reported rate is a
/// conservative lower bound (the paper's relative -copy gap dominates).
CowOutcome RunNet(bool eager_copy, uint32_t size) {
  BenchEnv env = BenchEnv::FromEnv();
  sim::Simulation sim(17);
  BenchObs::Arm(&sim);
  net::Fabric fabric(&sim, net::NetworkConfig{}, 2);
  dmnet::DmServerConfig scfg;
  scfg.num_frames = 1u << 16;
  scfg.cores = 1;  // paper: one CPU core in a single memory server
  scfg.eager_copy = eager_copy;
  dmnet::DmServer server(&fabric, 1, dmnet::kDmServerPort, scfg,
                         uint64_t{1} << 44);
  rpc::Rpc rpc(&fabric, 0, 1000);
  dmnet::DmNetClient client(
      &rpc, {{1, dmnet::kDmServerPort, uint64_t{1} << 44, uint64_t{1} << 44}});

  // Setup: register, allocate and fill the source buffer.
  dm::RemoteAddr va = 0;
  Status setup = msvc::RunToCompletion(&sim, [&]() -> sim::Task<Status> {
    Status st = co_await client.Init();
    if (!st.ok()) co_return st;
    auto a = co_await client.Alloc(size);
    if (!a.ok()) co_return a.status();
    va = *a;
    std::vector<uint8_t> data(size, 0x3c);
    co_return co_await client.Write(va, data.data(), size);
  }());
  DMRPC_CHECK(setup.ok()) << setup.ToString();

  msvc::RequestFn fn = [&client, &sim, va,
                        size]() -> sim::Task<StatusOr<uint64_t>> {
    auto ref = co_await client.CreateRef(va, size);
    if (!ref.ok()) co_return ref.status();
    // Release outside the timed create path (detached).
    auto release = [](dmnet::DmNetClient* c, dm::Ref r) -> sim::Task<> {
      (void)co_await c->ReleaseRef(r);
    };
    sim.Spawn(release(&client, std::move(*ref)));
    co_return uint64_t{size};
  };

  uint64_t traffic = 0;
  uint64_t creates = 0;
  msvc::WindowHooks hooks;
  hooks.on_measure_start = [&] {
    server.memory_meter().Reset();
    creates = server.stats().create_refs;
  };
  hooks.on_measure_end = [&] {
    traffic = server.memory_meter().total_bytes();
    creates = server.stats().create_refs - creates;
  };
  msvc::WorkloadResult res = msvc::RunClosedLoop(
      &sim, fn, /*workers=*/8, env.Warmup(10 * kMillisecond),
      env.Measure(150 * kMillisecond), hooks);
  CowOutcome out;
  out.krps = res.throughput_rps() / 1e3;
  out.response_us = res.latency.mean() / 1e3;
  out.traffic_per_req =
      creates == 0 ? 0.0 : static_cast<double>(traffic) / creates;
  BenchObs::Record(std::string(eager_copy ? "net-copy" : "net") + "_" +
                       std::to_string(size) + "B",
                   &sim);
  return out;
}

/// Measures create_ref on the CXL backend: a single client thread.
CowOutcome RunCxl(bool eager_copy, uint32_t size) {
  BenchEnv env = BenchEnv::FromEnv();
  sim::Simulation sim(18);
  BenchObs::Arm(&sim);
  net::Fabric fabric(&sim, net::NetworkConfig{}, 2);
  cxl::GfamDevice device(1u << 16, 4096);
  cxl::Coordinator coordinator(&fabric, 1, &device);
  rpc::Rpc rpc(&fabric, 0, 1000);
  mem::BandwidthMeter meter;
  cxl::CxlPort port(&sim, &device, mem::MemoryConfig{}, &meter);
  cxl::HostDmConfig hcfg;
  hcfg.eager_copy = eager_copy;
  hcfg.refill_batch = 512;
  hcfg.high_watermark = 4096;
  cxl::HostDmLayer host(&rpc, &port, 1, cxl::kCoordinatorPort, hcfg);

  dm::RemoteAddr va = 0;
  Status setup = msvc::RunToCompletion(&sim, [&]() -> sim::Task<Status> {
    Status st = co_await host.Init();
    if (!st.ok()) co_return st;
    auto a = co_await host.Alloc(size);
    if (!a.ok()) co_return a.status();
    va = *a;
    std::vector<uint8_t> data(size, 0x3c);
    co_return co_await host.Write(va, data.data(), size);
  }());
  DMRPC_CHECK(setup.ok()) << setup.ToString();

  msvc::RequestFn fn = [&host, va, size]() -> sim::Task<StatusOr<uint64_t>> {
    auto ref = co_await host.CreateRef(va, size);
    if (!ref.ok()) co_return ref.status();
    (void)co_await host.ReleaseRef(*ref);
    co_return uint64_t{size};
  };

  uint64_t traffic = 0;
  uint64_t creates = 0;
  msvc::WindowHooks hooks;
  hooks.on_measure_start = [&] {
    meter.Reset();
    creates = host.stats().create_refs;
  };
  hooks.on_measure_end = [&] {
    traffic = meter.total_bytes();
    creates = host.stats().create_refs - creates;
  };
  // One client thread (paper), releases inline; latency below reports the
  // create_ref half of the cycle.
  msvc::WorkloadResult res = msvc::RunClosedLoop(
      &sim, fn, /*workers=*/1, env.Warmup(10 * kMillisecond),
      env.Measure(150 * kMillisecond), hooks);
  CowOutcome out;
  out.krps = res.throughput_rps() / 1e3;
  out.response_us = res.latency.mean() / 1e3;
  out.traffic_per_req =
      creates == 0 ? 0.0 : static_cast<double>(traffic) / creates;
  BenchObs::Record(std::string(eager_copy ? "cxl-copy" : "cxl") + "_" +
                       std::to_string(size) + "B",
                   &sim);
  return out;
}

const CowOutcome& Run(Variant variant, uint32_t size) {
  auto key = std::make_pair(static_cast<int>(variant), size);
  auto it = Cache().find(key);
  if (it != Cache().end()) return it->second;
  CowOutcome out;
  switch (variant) {
    case Variant::kNet:
      out = RunNet(false, size);
      break;
    case Variant::kNetCopy:
      out = RunNet(true, size);
      break;
    case Variant::kCxl:
      out = RunCxl(false, size);
      break;
    case Variant::kCxlCopy:
      out = RunCxl(true, size);
      break;
  }
  return Cache().emplace(key, out).first->second;
}

constexpr uint32_t kSizes[] = {4096, 16384, 65536, 262144};

void BM_CreateRef(benchmark::State& state) {
  auto variant = static_cast<Variant>(state.range(0));
  uint32_t size = static_cast<uint32_t>(state.range(1));
  for (auto _ : state) {
    const CowOutcome& out = Run(variant, size);
    state.counters["krps"] = out.krps;
    state.counters["resp_us"] = out.response_us;
    state.counters["traffic_B_per_req"] = out.traffic_per_req;
  }
  state.SetLabel(VariantName(variant));
}

void RegisterAll() {
  for (Variant v : {Variant::kNet, Variant::kNetCopy, Variant::kCxl,
                    Variant::kCxlCopy}) {
    for (uint32_t size : kSizes) {
      benchmark::RegisterBenchmark("fig07/create_ref", BM_CreateRef)
          ->Args({static_cast<int64_t>(v), size})
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

void PrintPaperTables() {
  Table rate("Fig 7a: create_ref request rate (krps)",
             {"size", "net", "net-copy", "cxl", "cxl-copy", "net-gain",
              "cxl-gain"});
  Table resp("Fig 7b: create_ref response time (us)",
             {"size", "net", "net-copy", "cxl", "cxl-copy"});
  Table traffic("Fig 7c: DM memory traffic per request (bytes)",
                {"size", "net", "net-copy", "cxl", "cxl-copy"});
  for (uint32_t size : kSizes) {
    const CowOutcome& net = Run(Variant::kNet, size);
    const CowOutcome& netc = Run(Variant::kNetCopy, size);
    const CowOutcome& cxl = Run(Variant::kCxl, size);
    const CowOutcome& cxlc = Run(Variant::kCxlCopy, size);
    rate.AddRow({FormatBytes(size), Table::Num(net.krps),
                 Table::Num(netc.krps), Table::Num(cxl.krps),
                 Table::Num(cxlc.krps),
                 Table::Num(netc.krps > 0 ? net.krps / netc.krps : 0, 2) + "x",
                 Table::Num(cxlc.krps > 0 ? cxl.krps / cxlc.krps : 0, 2) +
                     "x"});
    resp.AddRow({FormatBytes(size), Table::Num(net.response_us, 2),
                 Table::Num(netc.response_us, 2),
                 Table::Num(cxl.response_us, 2),
                 Table::Num(cxlc.response_us, 2)});
    traffic.AddRow({FormatBytes(size), Table::Num(net.traffic_per_req, 0),
                    Table::Num(netc.traffic_per_req, 0),
                    Table::Num(cxl.traffic_per_req, 0),
                    Table::Num(cxlc.traffic_per_req, 0)});
  }
  rate.Print();
  resp.Print();
  traffic.Print();
}

}  // namespace
}  // namespace dmrpc::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  dmrpc::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  dmrpc::bench::PrintPaperTables();
  return 0;
}
