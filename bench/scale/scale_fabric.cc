// Raw-fabric microbenchmarks for the Clos topology, no RPC stack on top:
//
//   1. ECMP spread: how evenly the deterministic flow hash balances
//      random inter-leaf flows over the spines (and a symmetry check --
//      every reverse flow must pin the same spine as its forward flow).
//   2. Incast: every other host blasts packets at one victim host; the
//      victim's leaf down-port queue fills, overflow drops are counted
//      under queue_full, and the high-water depths per port tier are
//      reported. This is the isolated view of the congestion signal the
//      scale_sweep curves show end to end.
//
// Flags: --hosts=N --spines=N --leaves=N --queue=N --seed=N
//        --flows=N (spread sample count) --burst=N (incast pkts/sender)

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "common/random.h"
#include "net/fabric.h"
#include "net/topology.h"
#include "sim/simulation.h"

namespace dmrpc::bench {
namespace {

struct Options {
  uint32_t hosts = 96;
  uint32_t spines = 4;
  uint32_t leaves = 8;
  uint32_t queue = 64;
  uint64_t seed = 42;
  uint32_t flows = 100000;
  uint32_t burst = 64;
};

net::Packet MakePacket(net::NodeId src, net::NodeId dst, net::Port sport,
                       net::Port dport, size_t bytes) {
  net::Packet p;
  p.src = src;
  p.dst = dst;
  p.src_port = sport;
  p.dst_port = dport;
  p.payload.assign(bytes, 0xab);
  return p;
}

void EcmpSpread(const Options& opt) {
  sim::Simulation sim(opt.seed);
  net::TopologyConfig topo =
      net::TopologyConfig::Clos(opt.hosts, opt.spines, opt.leaves, opt.queue);
  net::Fabric fabric(&sim, net::NetworkConfig{}, topo);

  Rng rng(opt.seed, 99);
  std::vector<uint64_t> per_spine(opt.spines, 0);
  uint64_t sampled = 0, asymmetric = 0;
  while (sampled < opt.flows) {
    auto src = static_cast<net::NodeId>(rng.Uniform(opt.hosts));
    auto dst = static_cast<net::NodeId>(rng.Uniform(opt.hosts));
    auto sp = static_cast<net::Port>(1 + rng.Uniform(60000));
    auto dp = static_cast<net::Port>(1 + rng.Uniform(60000));
    if (topo.LeafOf(src) == topo.LeafOf(dst)) continue;  // no spine hop
    net::SwitchId fwd = fabric.SpineForFlow(src, sp, dst, dp);
    net::SwitchId rev = fabric.SpineForFlow(dst, dp, src, sp);
    if (fwd != rev) asymmetric++;
    per_spine[fwd - topo.FirstSpine()]++;
    sampled++;
  }

  uint64_t lo = per_spine[0], hi = per_spine[0];
  for (uint64_t c : per_spine) {
    lo = std::min(lo, c);
    hi = std::max(hi, c);
  }
  double ideal = static_cast<double>(sampled) / opt.spines;
  Table table("ECMP spread over " + std::to_string(opt.spines) + " spines (" +
                  std::to_string(sampled) + " inter-leaf flows)",
              {"spine", "flows", "vs-ideal-%"});
  for (uint32_t s = 0; s < opt.spines; ++s) {
    table.AddRow({Table::Int(s), Table::Int(per_spine[s]),
                  Table::Num(100.0 * per_spine[s] / ideal - 100.0, 2)});
  }
  table.Print();
  std::printf("imbalance (max/min): %.4f   asymmetric flows: %" PRIu64 "\n",
              static_cast<double>(hi) / static_cast<double>(lo), asymmetric);
  if (asymmetric != 0) {
    LOG_FATAL << "ECMP symmetry violated for " << asymmetric << " flows";
  }
}

void Incast(const Options& opt) {
  sim::Simulation sim(opt.seed);
  BenchObs::Arm(&sim);
  net::TopologyConfig topo =
      net::TopologyConfig::Clos(opt.hosts, opt.spines, opt.leaves, opt.queue);
  net::Fabric fabric(&sim, net::NetworkConfig{}, topo);

  const net::NodeId victim = 0;
  sim::Channel<net::Packet> inbox;
  fabric.nic(victim)->BindPort(80, &inbox);
  uint64_t sent = 0;
  for (net::NodeId n = 1; n < opt.hosts; ++n) {
    sim.At(0, [&fabric, &opt, n, &sent] {
      for (uint32_t k = 0; k < opt.burst; ++k) {
        fabric.nic(n)->Send(MakePacket(n, 0, 100, 80, 1024));
        sent++;
      }
    });
  }
  sim.Run();

  uint64_t delivered = 0;
  while (inbox.TryPop().has_value()) delivered++;
  const net::SwitchStats& st = fabric.switch_stats();

  uint32_t max_down = 0, max_up = 0, max_spine = 0;
  for (const net::PortStat& ps : fabric.PortStats()) {
    uint32_t hpl = topo.HostsPerLeaf();
    if (ps.is_spine) {
      max_spine = std::max(max_spine, ps.max_depth);
    } else if (ps.port < hpl) {
      max_down = std::max(max_down, ps.max_depth);
    } else {
      max_up = std::max(max_up, ps.max_depth);
    }
  }

  Table table("Incast: " + std::to_string(opt.hosts - 1) + " senders x " +
                  std::to_string(opt.burst) + " pkts -> host 0 (queue " +
                  std::to_string(opt.queue) + ")",
              {"sent", "delivered", "drop-full", "max-leaf-down", "max-leaf-up",
               "max-spine"});
  table.AddRow({Table::Int(sent), Table::Int(delivered),
                Table::Int(st.dropped_queue_full), Table::Int(max_down),
                Table::Int(max_up), Table::Int(max_spine)});
  table.Print();
  if (delivered + st.dropped_queue_full != sent) {
    LOG_FATAL << "incast accounting leak: " << sent << " sent, " << delivered
              << " delivered, " << st.dropped_queue_full << " dropped";
  }
  BenchObs::Record("incast", &sim);
}

int Main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    auto val = [&](const char* flag) -> const char* {
      size_t n = std::strlen(flag);
      if (std::strncmp(a, flag, n) == 0 && a[n] == '=') return a + n + 1;
      return nullptr;
    };
    const char* v = nullptr;
    if ((v = val("--hosts")) != nullptr) {
      opt.hosts = static_cast<uint32_t>(std::atoi(v));
    } else if ((v = val("--spines")) != nullptr) {
      opt.spines = static_cast<uint32_t>(std::atoi(v));
    } else if ((v = val("--leaves")) != nullptr) {
      opt.leaves = static_cast<uint32_t>(std::atoi(v));
    } else if ((v = val("--queue")) != nullptr) {
      opt.queue = static_cast<uint32_t>(std::atoi(v));
    } else if ((v = val("--seed")) != nullptr) {
      opt.seed = static_cast<uint64_t>(std::atoll(v));
    } else if ((v = val("--flows")) != nullptr) {
      opt.flows = static_cast<uint32_t>(std::atoi(v));
    } else if ((v = val("--burst")) != nullptr) {
      opt.burst = static_cast<uint32_t>(std::atoi(v));
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", a);
      return 2;
    }
  }
  EcmpSpread(opt);
  Incast(opt);
  return 0;
}

}  // namespace
}  // namespace dmrpc::bench

int main(int argc, char** argv) { return dmrpc::bench::Main(argc, argv); }
