// Datacenter-scale offered-load sweep: the DeathStarBench-style social
// network deployed as many independent cells over a spine/leaf Clos
// fabric (net::TopologyConfig::Clos), driven open-loop from every
// remaining host by src/workload's arrival processes. For each offered
// rate the whole datacenter is rebuilt from the same seed, so rate
// points are independent and any same-seed rerun is bit-identical.
//
// Reported per rate: goodput, p50/p99/p999 latency, drop counts by
// reason, and the fabric's high-water egress queue depths. The sweep
// locates the saturation knee (first rate whose p99 blows past 3x the
// lightest rate's p99, or whose goodput falls under 95% of offered) and
// writes everything to BENCH_scale.json (override with DMRPC_SCALE_JSON).
//
// Flags (defaults in Options):
//   --hosts=N --spines=N --leaves=N     fabric shape
//   --cells=N                           socialnet cells (0 = one per leaf)
//   --queue=N                           per-port egress queue, packets
//   --backend=erpc|dmnet|cxl            data-sharing substrate
//   --rates=10,20,40                    offered load sweep, krps
//   --seed=N                            simulation seed
//   --zipf=S                            timeline-read popularity skew
//   --arrival=poisson|pareto|lognormal  inter-arrival process
//   --diurnal=A                         diurnal amplitude (0 disables)
//   --warmup-ms=N --measure-ms=N        window lengths
//   --threads=N                         simulation executors (0 = the
//                                       sequential engine; N >= 1 runs
//                                       the LP engine, bit-identical)
//   --no-thread-sweep                   skip the thread-scaling pass
//   --smoke                             small preset for CI
//   --verify-determinism                run every rate twice, compare
//                                       metric fingerprints, exit 1 on
//                                       any divergence

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "apps/socialnet.h"
#include "bench/bench_util.h"
#include "common/logging.h"
#include "msvc/cluster.h"
#include "msvc/workload.h"
#include "net/topology.h"
#include "sim/simulation.h"
#include "workload/openloop.h"

namespace dmrpc::bench {
namespace {

struct Options {
  uint32_t hosts = 192;
  uint32_t spines = 4;
  uint32_t leaves = 8;
  uint32_t cells = 0;  // 0 -> one per leaf
  uint32_t queue = 256;
  msvc::Backend backend = msvc::Backend::kDmNet;
  /// Straddles the default config's saturation knee (DM-server service
  /// capacity binds around ~2.5-3M rps for 8 cells x 8 DM servers).
  std::vector<double> rates_krps = {250, 500, 1000, 1500, 2000, 2500, 3000};
  uint64_t seed = 42;
  double zipf = 0.99;
  workload::ArrivalConfig arrival;
  double diurnal = 0.0;
  TimeNs diurnal_period = 100 * kMillisecond;
  TimeNs warmup = 15 * kMillisecond;
  TimeNs measure = 60 * kMillisecond;
  int threads = 0;  // 0 = sequential engine, N >= 1 = LP engine
  bool thread_sweep = true;
  bool smoke = false;
  bool verify = false;

  uint32_t Cells() const { return cells == 0 ? leaves : cells; }
};

/// Host placement over the leaf blocks: each cell's 3 app servers sit on
/// consecutive hosts of one leaf (service-to-service hops stay
/// leaf-local); one DM server per leaf on the block's last host (kDmNet);
/// every remaining host runs an open-loop client whose cell assignment is
/// round-robin, so most client traffic crosses the spines.
struct Layout {
  std::vector<std::vector<net::NodeId>> cell_nodes;
  std::vector<net::NodeId> dm_nodes;
  std::vector<net::NodeId> client_nodes;
};

Layout BuildLayout(const Options& opt) {
  net::TopologyConfig topo =
      net::TopologyConfig::Clos(opt.hosts, opt.spines, opt.leaves, opt.queue);
  uint32_t hpl = topo.HostsPerLeaf();
  Layout lay;
  std::vector<bool> used(opt.hosts, false);
  auto block_end = [&](uint32_t leaf) {
    return std::min(opt.hosts, (leaf + 1) * hpl);
  };
  if (opt.backend == msvc::Backend::kDmNet) {
    for (uint32_t l = 0; l < opt.leaves; ++l) {
      if (l * hpl >= opt.hosts) break;
      net::NodeId dm = block_end(l) - 1;
      lay.dm_nodes.push_back(dm);
      used[dm] = true;
    }
  }
  if (opt.backend == msvc::Backend::kDmCxl) used[opt.hosts - 1] = true;
  for (uint32_t i = 0; i < opt.Cells(); ++i) {
    uint32_t leaf = i % opt.leaves;
    net::NodeId base = leaf * hpl + 3 * (i / opt.leaves);
    if (base + 3 > block_end(leaf) || used[base + 2]) {
      LOG_FATAL << "layout: leaf " << leaf << " cannot fit cell " << i
                << " (need 3 free hosts; grow --hosts or shrink --cells)";
    }
    lay.cell_nodes.push_back({base, base + 1, base + 2});
    used[base] = used[base + 1] = used[base + 2] = true;
  }
  for (net::NodeId n = 0; n < opt.hosts; ++n) {
    if (!used[n]) lay.client_nodes.push_back(n);
  }
  if (lay.client_nodes.empty()) {
    LOG_FATAL << "layout: no hosts left for clients";
  }
  return lay;
}

uint64_t Fnv1a(const std::string& s) {
  uint64_t h = 14695981039346656037ull;
  for (char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

/// One measured point of the sweep.
struct RatePoint {
  double offered_krps = 0;
  double goodput_krps = 0;
  double mean_us = 0;
  double p50_us = 0;
  double p99_us = 0;
  double p999_us = 0;
  uint64_t offered = 0;
  uint64_t completed = 0;
  uint64_t failed = 0;
  net::SwitchStats drops;
  uint32_t max_port_depth = 0;
  uint64_t fingerprint = 0;
  /// FNV-1a of the timeline JSONL sidecar (0 when sampling is off). Part
  /// of the thread-scaling bit-identity check: the whole per-window time
  /// series must match across worker-thread counts, not just the final
  /// registry state.
  uint64_t timeline_fingerprint = 0;
  uint64_t timeline_windows = 0;
  uint64_t slo_breaches = 0;
  double wall_ms = 0;
};

RatePoint RunOne(const Options& opt, double rate_krps, const char* label_suffix,
                 int threads) {
  auto wall_start = std::chrono::steady_clock::now();
  sim::SimConfig scfg;
  scfg.worker_threads = threads;
  sim::Simulation sim(opt.seed, scfg);
  BenchObs::Arm(&sim);
  if (sim.timeline().enabled()) {
    // Burn-rate SLOs evaluated per sampled window. The p99 latency
    // objective (budget 0.01: 99% of calls under 1 ms) trips as the sweep
    // crosses the knee; the drop-rate objective (budget 0.001 of
    // forwarded packets) trips once egress queues overflow.
    sim.slo().AddObjective(obs::SloObjective::Latency(
        "rpc_call_1ms", "rpc.call", 1 * kMillisecond, /*budget=*/0.01));
    sim.slo().AddObjective(obs::SloObjective::Ratio(
        "net_drop_rate", "net.switch.dropped", "net.switch.forwarded",
        /*budget=*/0.001));
  }

  msvc::ClusterConfig cfg;
  cfg.backend = opt.backend;
  cfg.num_nodes = opt.hosts;
  cfg.topology =
      net::TopologyConfig::Clos(opt.hosts, opt.spines, opt.leaves, opt.queue);
  cfg.dm_frames = 1u << 18;
  Layout lay = BuildLayout(opt);
  if (opt.backend == msvc::Backend::kDmNet) {
    cfg.dm_server_nodes = lay.dm_nodes;
  }
  if (opt.backend == msvc::Backend::kDmCxl) {
    cfg.coordinator_node = opt.hosts - 1;
  }
  msvc::Cluster cluster(&sim, cfg);

  std::vector<std::unique_ptr<apps::SocialNetApp>> cells;
  for (size_t i = 0; i < lay.cell_nodes.size(); ++i) {
    apps::SocialNetConfig scfg;
    scfg.read_zipf_skew = opt.zipf;
    scfg.service_prefix = "sn" + std::to_string(i) + "-";
    cells.push_back(std::make_unique<apps::SocialNetApp>(
        &cluster, lay.cell_nodes[i], scfg));
  }
  std::vector<msvc::RequestFn> sources;
  for (size_t j = 0; j < lay.client_nodes.size(); ++j) {
    msvc::ServiceEndpoint* client = cluster.AddService(
        "client" + std::to_string(j), lay.client_nodes[j], 1000, 4);
    sources.push_back(
        cells[j % cells.size()]->MakeMixedRequestFn(client));
  }
  Status st = msvc::RunToCompletion(&sim, cluster.InitAll());
  if (!st.ok()) LOG_FATAL << "init: " << st.ToString();

  workload::OpenLoopConfig wcfg;
  wcfg.rate_rps = rate_krps * 1000.0;
  wcfg.arrival = opt.arrival;
  wcfg.diurnal.amplitude = opt.diurnal;
  wcfg.diurnal.period_ns = opt.diurnal_period;
  msvc::WorkloadResult res =
      workload::RunOpenLoopMulti(&sim, sources, wcfg, opt.warmup, opt.measure);

  RatePoint pt;
  pt.offered_krps = rate_krps;
  pt.goodput_krps = res.throughput_rps() / 1e3;
  pt.mean_us = res.latency.mean() / 1e3;
  pt.p50_us = res.latency.p50() / 1e3;
  pt.p99_us = res.latency.p99() / 1e3;
  pt.p999_us = res.latency.p999() / 1e3;
  pt.offered = res.offered;
  pt.completed = res.completed;
  pt.failed = res.failed;
  pt.drops = cluster.fabric()->switch_stats();
  pt.max_port_depth = cluster.fabric()->max_port_depth();
  pt.fingerprint = Fnv1a(sim.DumpMetricsJson());
  if (sim.timeline().enabled()) {
    // Captured before Record(): writing the sidecars clears the windows.
    pt.timeline_fingerprint = Fnv1a(sim.timeline().ToJsonLines());
    pt.timeline_windows = sim.timeline().windows().size();
    pt.slo_breaches = sim.slo().breaches().size();
  }
  pt.wall_ms = std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - wall_start)
                   .count();
  char label[64];
  std::snprintf(label, sizeof(label), "%s_%gkrps%s",
                msvc::BackendName(opt.backend), rate_krps, label_suffix);
  BenchObs::Record(label, &sim);
  return pt;
}

/// First rate past the saturation knee, or -1 when the sweep stayed flat.
double KneeKrps(const std::vector<RatePoint>& points) {
  if (points.empty()) return -1.0;
  const RatePoint& base = points.front();
  for (const RatePoint& p : points) {
    bool latency_blown = base.p99_us > 0 && p.p99_us > 3.0 * base.p99_us;
    bool goodput_lost = p.goodput_krps < 0.95 * p.offered_krps;
    if (latency_blown || goodput_lost) return p.offered_krps;
  }
  return -1.0;
}

/// One point of the thread-scaling pass: the same rate, seed, and
/// datacenter, executed with a different number of simulation threads.
struct ThreadPoint {
  int threads = 0;
  double wall_ms = 0;
  uint64_t fingerprint = 0;
  uint64_t completed = 0;
};

void WriteJson(const Options& opt, const std::vector<RatePoint>& points,
               double knee, bool verified, double thread_rate,
               const std::vector<ThreadPoint>& tpoints,
               bool thread_identical) {
  const char* path = std::getenv("DMRPC_SCALE_JSON");
  if (path == nullptr || path[0] == '\0') path = "BENCH_scale.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    LOG_FATAL << "cannot write " << path;
  }
  std::fprintf(f, "{\n  \"bench\": \"scale_sweep\",\n");
  std::fprintf(f,
               "  \"config\": {\"hosts\": %u, \"spines\": %u, \"leaves\": %u, "
               "\"cells\": %u, \"clients\": %zu, \"queue_packets\": %u, "
               "\"backend\": \"%s\", \"arrival\": \"%s\", \"zipf\": %g, "
               "\"diurnal_amplitude\": %g, \"seed\": %" PRIu64
               ", \"warmup_ms\": %" PRId64 ", \"measure_ms\": %" PRId64 "},\n",
               opt.hosts, opt.spines, opt.leaves, opt.Cells(),
               BuildLayout(opt).client_nodes.size(), opt.queue,
               msvc::BackendName(opt.backend),
               workload::ArrivalKindName(opt.arrival.kind), opt.zipf,
               opt.diurnal, opt.seed, opt.warmup / kMillisecond,
               opt.measure / kMillisecond);
  std::fprintf(f, "  \"points\": [\n");
  for (size_t i = 0; i < points.size(); ++i) {
    const RatePoint& p = points[i];
    std::fprintf(
        f,
        "    {\"offered_krps\": %g, \"goodput_krps\": %.2f, "
        "\"mean_us\": %.2f, \"p50_us\": %.2f, \"p99_us\": %.2f, "
        "\"p999_us\": %.2f, \"offered\": %" PRIu64 ", \"completed\": %" PRIu64
        ", \"failed\": %" PRIu64 ", \"max_port_depth\": %u, "
        "\"drops\": {\"queue_full\": %" PRIu64 ", \"switch_down\": %" PRIu64
        ", \"loss\": %" PRIu64 ", \"fault\": %" PRIu64
        ", \"unknown_dst\": %" PRIu64 "}, \"metrics_fingerprint\": \"%016" PRIx64
        "\"",
        p.offered_krps, p.goodput_krps, p.mean_us, p.p50_us, p.p99_us,
        p.p999_us, p.offered, p.completed, p.failed, p.max_port_depth,
        p.drops.dropped_queue_full, p.drops.dropped_switch_down,
        p.drops.dropped_loss, p.drops.dropped_fault,
        p.drops.dropped_unknown_dst, p.fingerprint);
    if (p.timeline_windows > 0) {
      // Present only when DMRPC_TIMELINE_US armed the sampler, so the
      // baked no-timeline BENCH_scale.json keeps its schema.
      std::fprintf(f,
                   ", \"timeline_windows\": %" PRIu64
                   ", \"slo_breaches\": %" PRIu64
                   ", \"timeline_fingerprint\": \"%016" PRIx64 "\"",
                   p.timeline_windows, p.slo_breaches, p.timeline_fingerprint);
    }
    std::fprintf(f, "}%s\n", i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  if (knee > 0) {
    std::fprintf(f, "  \"knee_krps\": %g,\n", knee);
  } else {
    std::fprintf(f, "  \"knee_krps\": null,\n");
  }
  if (!tpoints.empty()) {
    // wall_ms is host-dependent; host_cores says how many real cores
    // backed the run (on a 1-core box the LP engine can only pay
    // synchronization overhead, so ~1x or below is the hardware
    // ceiling there, not an engine property).
    std::fprintf(f,
                 "  \"thread_scaling\": {\"rate_krps\": %g, "
                 "\"host_cores\": %u, \"runs\": [",
                 thread_rate, std::thread::hardware_concurrency());
    for (size_t i = 0; i < tpoints.size(); ++i) {
      const ThreadPoint& tp = tpoints[i];
      std::fprintf(f,
                   "%s\n    {\"threads\": %d, \"wall_ms\": %.1f, "
                   "\"completed\": %" PRIu64
                   ", \"metrics_fingerprint\": \"%016" PRIx64 "\"}",
                   i > 0 ? "," : "", tp.threads, tp.wall_ms, tp.completed,
                   tp.fingerprint);
    }
    double w1 = 0, w8 = 0;
    for (const ThreadPoint& tp : tpoints) {
      if (tp.threads == 1) w1 = tp.wall_ms;
      if (tp.threads == 8) w8 = tp.wall_ms;
    }
    std::fprintf(f,
                 "\n  ], \"bit_identical\": %s, "
                 "\"speedup_8_vs_1\": %.2f},\n",
                 thread_identical ? "true" : "false",
                 w8 > 0 ? w1 / w8 : 0.0);
  }
  std::fprintf(f, "  \"determinism\": \"%s\"\n}\n",
               verified ? "verified" : "unverified");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

bool ParseRates(const char* s, std::vector<double>* out) {
  out->clear();
  while (*s != '\0') {
    char* end = nullptr;
    double v = std::strtod(s, &end);
    if (end == s || v <= 0) return false;
    out->push_back(v);
    s = end;
    if (*s == ',') ++s;
  }
  return !out->empty();
}

bool ParseOptions(int argc, char** argv, Options* opt) {
  // --smoke first, so explicit flags override the preset in either order.
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      opt->smoke = true;
      opt->hosts = 24;
      opt->spines = 2;
      opt->leaves = 4;
      opt->cells = 2;
      opt->queue = 64;
      opt->rates_krps = {100, 200, 400, 600, 800};
      opt->warmup = 10 * kMillisecond;
      opt->measure = 30 * kMillisecond;
    }
  }
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    auto val = [&](const char* flag) -> const char* {
      size_t n = std::strlen(flag);
      if (std::strncmp(a, flag, n) == 0 && a[n] == '=') return a + n + 1;
      return nullptr;
    };
    const char* v = nullptr;
    if (std::strcmp(a, "--smoke") == 0) {
      continue;
    } else if (std::strcmp(a, "--verify-determinism") == 0) {
      opt->verify = true;
    } else if ((v = val("--hosts")) != nullptr) {
      opt->hosts = static_cast<uint32_t>(std::atoi(v));
    } else if ((v = val("--spines")) != nullptr) {
      opt->spines = static_cast<uint32_t>(std::atoi(v));
    } else if ((v = val("--leaves")) != nullptr) {
      opt->leaves = static_cast<uint32_t>(std::atoi(v));
    } else if ((v = val("--cells")) != nullptr) {
      opt->cells = static_cast<uint32_t>(std::atoi(v));
    } else if ((v = val("--queue")) != nullptr) {
      opt->queue = static_cast<uint32_t>(std::atoi(v));
    } else if ((v = val("--seed")) != nullptr) {
      opt->seed = static_cast<uint64_t>(std::atoll(v));
    } else if ((v = val("--zipf")) != nullptr) {
      opt->zipf = std::atof(v);
    } else if ((v = val("--diurnal")) != nullptr) {
      opt->diurnal = std::atof(v);
    } else if ((v = val("--diurnal-period-ms")) != nullptr) {
      opt->diurnal_period = std::atoll(v) * kMillisecond;
    } else if (std::strcmp(a, "--no-thread-sweep") == 0) {
      opt->thread_sweep = false;
    } else if ((v = val("--threads")) != nullptr) {
      opt->threads = std::atoi(v);
    } else if ((v = val("--warmup-ms")) != nullptr) {
      opt->warmup = std::atoll(v) * kMillisecond;
    } else if ((v = val("--measure-ms")) != nullptr) {
      opt->measure = std::atoll(v) * kMillisecond;
    } else if ((v = val("--rates")) != nullptr) {
      if (!ParseRates(v, &opt->rates_krps)) {
        std::fprintf(stderr, "bad --rates: %s\n", v);
        return false;
      }
    } else if ((v = val("--arrival")) != nullptr) {
      if (!workload::ParseArrivalKind(v, &opt->arrival.kind)) {
        std::fprintf(stderr, "bad --arrival: %s\n", v);
        return false;
      }
    } else if ((v = val("--backend")) != nullptr) {
      if (std::strcmp(v, "erpc") == 0) {
        opt->backend = msvc::Backend::kErpc;
      } else if (std::strcmp(v, "dmnet") == 0) {
        opt->backend = msvc::Backend::kDmNet;
      } else if (std::strcmp(v, "cxl") == 0) {
        opt->backend = msvc::Backend::kDmCxl;
      } else {
        std::fprintf(stderr, "bad --backend: %s\n", v);
        return false;
      }
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", a);
      return false;
    }
  }
  return true;
}

int Main(int argc, char** argv) {
  Options opt;
  if (!ParseOptions(argc, argv, &opt)) return 2;

  Layout lay = BuildLayout(opt);
  std::printf("scale_sweep: %s, %u hosts (%u leaves x %u spines), "
              "%u cells, %zu clients, %zu dm servers, arrival=%s\n",
              msvc::BackendName(opt.backend), opt.hosts, opt.leaves,
              opt.spines, opt.Cells(), lay.client_nodes.size(),
              lay.dm_nodes.size(), workload::ArrivalKindName(opt.arrival.kind));

  std::vector<RatePoint> points;
  bool determinism_ok = true;
  for (double rate : opt.rates_krps) {
    RatePoint pt = RunOne(opt, rate, "", opt.threads);
    if (opt.verify) {
      RatePoint again = RunOne(opt, rate, "_rerun", opt.threads);
      if (again.fingerprint != pt.fingerprint ||
          again.timeline_fingerprint != pt.timeline_fingerprint ||
          again.completed != pt.completed || again.p99_us != pt.p99_us) {
        std::fprintf(stderr,
                     "DETERMINISM FAILURE at %g krps: fingerprints "
                     "%016" PRIx64 " vs %016" PRIx64 "\n",
                     rate, pt.fingerprint, again.fingerprint);
        determinism_ok = false;
      }
    }
    std::printf("  %6.1f krps: goodput %7.2f krps  p50 %8.1f us  "
                "p99 %8.1f us  p999 %8.1f us  qdepth %u  drops %" PRIu64 "\n",
                pt.offered_krps, pt.goodput_krps, pt.p50_us, pt.p99_us,
                pt.p999_us, pt.max_port_depth,
                pt.drops.dropped_queue_full + pt.drops.dropped_loss);
    if (pt.timeline_windows > 0) {
      std::printf("          timeline: %" PRIu64 " windows, %" PRIu64
                  " SLO breach%s\n",
                  pt.timeline_windows, pt.slo_breaches,
                  pt.slo_breaches == 1 ? "" : "es");
    }
    points.push_back(pt);
  }

  double knee = KneeKrps(points);
  Table table("Scale sweep: latency vs offered load (" +
                  std::string(msvc::BackendName(opt.backend)) + ", " +
                  std::to_string(opt.Cells()) + " cells)",
              {"offered-krps", "goodput-krps", "p50-us", "p99-us", "p999-us",
               "qdepth", "drop-full"});
  for (const RatePoint& p : points) {
    table.AddRow({Table::Num(p.offered_krps), Table::Num(p.goodput_krps),
                  Table::Num(p.p50_us), Table::Num(p.p99_us),
                  Table::Num(p.p999_us), Table::Int(p.max_port_depth),
                  Table::Int(p.drops.dropped_queue_full)});
  }
  table.Print();
  if (knee > 0) {
    std::printf("saturation knee: %g krps\n", knee);
  } else {
    std::printf("saturation knee: not reached (raise --rates)\n");
  }

  // Thread-scaling pass: replay the middle rate with 1/2/4/8 simulation
  // threads. The sequential run is the bit-identity reference; wall_ms
  // measures what the LP engine buys on this host's cores.
  std::vector<ThreadPoint> tpoints;
  bool thread_identical = true;
  double thread_rate = opt.rates_krps[opt.rates_krps.size() / 2];
  if (opt.thread_sweep) {
    const RatePoint* ref = nullptr;
    if (opt.threads == 0) {
      for (const RatePoint& p : points) {
        if (p.offered_krps == thread_rate) ref = &p;
      }
    }
    RatePoint seq_pt;
    if (ref == nullptr) {
      seq_pt = RunOne(opt, thread_rate, "_tseq", 0);
      ref = &seq_pt;
    }
    tpoints.push_back({0, ref->wall_ms, ref->fingerprint, ref->completed});
    std::printf("thread scaling at %g krps (host cores: %u)\n", thread_rate,
                std::thread::hardware_concurrency());
    std::printf("  threads 0 (seq): wall %8.1f ms\n", ref->wall_ms);
    for (int th : {1, 2, 4, 8}) {
      char suffix[16];
      std::snprintf(suffix, sizeof(suffix), "_t%d", th);
      RatePoint p = RunOne(opt, thread_rate, suffix, th);
      bool same = p.fingerprint == ref->fingerprint &&
                  p.timeline_fingerprint == ref->timeline_fingerprint &&
                  p.completed == ref->completed;
      if (!same) thread_identical = false;
      tpoints.push_back({th, p.wall_ms, p.fingerprint, p.completed});
      std::printf("  threads %d      : wall %8.1f ms  (%.2fx vs seq)  %s\n",
                  th, p.wall_ms, p.wall_ms > 0 ? ref->wall_ms / p.wall_ms : 0.0,
                  same ? "bit-identical" : "FINGERPRINT DIVERGED");
    }
  }

  WriteJson(opt, points, knee, opt.verify && determinism_ok, thread_rate,
            tpoints, thread_identical);
  if (opt.verify && !determinism_ok) return 1;
  if (!thread_identical) return 1;
  return 0;
}

}  // namespace
}  // namespace dmrpc::bench

int main(int argc, char** argv) { return dmrpc::bench::Main(argc, argv); }
