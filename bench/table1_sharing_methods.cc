// Quantifies the paper's Table I: the four data-sharing approaches on one
// workload -- a producer shares a 32 KiB block with a consumer two RPC
// hops away (through a data-mover proxy, the paper's motivating
// topology); the consumer reads all of it and overwrites 25% in place.
//
//   Traditional RPC        pass-by-value, bytes cross at every hop
//   DSM model              shared mutable region + explicit RW locks
//   In-memory data store   immutable copies (Ray-like, two copies + IPC)
//   DmRPC                  pass-by-reference + copy-on-write
//
// Table I's qualitative cells become measurable: throughput/latency
// (Performance), whether the consumer's writes need app-level
// coordination (Programming), and whether writes are possible at all
// without a new object (Mutability).

#include <benchmark/benchmark.h>

#include <map>
#include <vector>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "core/dmrpc.h"
#include "datastore/object_store.h"
#include "dmnet/protocol.h"
#include "dsm/lock_server.h"
#include "msvc/cluster.h"
#include "msvc/workload.h"

namespace dmrpc::bench {
namespace {

constexpr uint32_t kBlockBytes = 32768;
constexpr uint32_t kWriteBytes = kBlockBytes / 4;
constexpr rpc::ReqType kShare = 70;

struct Outcome {
  double krps = 0.0;
  double latency_us = 0.0;
  /// Synchronization round trips the APPLICATION had to issue per
  /// request (Table I's "Programming" column, made countable).
  double sync_ops_per_req = 0.0;
};

enum class Method { kRpcValue = 0, kDsm = 1, kDataStore = 2, kDmRpc = 3 };

const char* MethodName(Method m) {
  switch (m) {
    case Method::kRpcValue:
      return "Traditional RPC";
    case Method::kDsm:
      return "DSM model";
    case Method::kDataStore:
      return "In-memory store";
    case Method::kDmRpc:
      return "DmRPC";
  }
  return "?";
}

std::map<int, Outcome>& Cache() {
  static auto* cache = new std::map<int, Outcome>();
  return *cache;
}

/// Traditional RPC and DmRPC share a harness: the backend decides whether
/// bytes or Refs cross the wire.
Outcome RunRpcStyle(msvc::Backend backend) {
  BenchEnv env = BenchEnv::FromEnv();
  sim::Simulation sim(26);
  BenchObs::Arm(&sim);
  msvc::ClusterConfig cfg;
  cfg.backend = backend;
  cfg.num_nodes = 5;
  cfg.dm_frames = 1u << 15;
  msvc::Cluster cluster(&sim, cfg);
  msvc::ServiceEndpoint* producer = cluster.AddService("producer", 0, 1000);
  msvc::ServiceEndpoint* proxy = cluster.AddService("proxy", 2, 1000);
  msvc::ServiceEndpoint* consumer = cluster.AddService("consumer", 1, 1000);
  proxy->RegisterHandler(
      kShare, [proxy](rpc::ReqContext,
                      rpc::MsgBuffer req) -> sim::Task<rpc::MsgBuffer> {
        co_await proxy->ForwardCost(req.size());
        auto resp = co_await proxy->CallService("consumer", kShare,
                                                std::move(req));
        if (!resp.ok()) {
          rpc::MsgBuffer err;
          err.Append<uint8_t>(1);
          co_return err;
        }
        co_return std::move(*resp);
      });
  consumer->RegisterHandler(
      kShare, [consumer](rpc::ReqContext,
                         rpc::MsgBuffer req) -> sim::Task<rpc::MsgBuffer> {
        core::Payload payload = core::Payload::DecodeFrom(&req);
        rpc::MsgBuffer resp;
        auto data = co_await consumer->dmrpc()->Fetch(payload);
        if (!data.ok()) {
          resp.Append<uint8_t>(1);
          co_return resp;
        }
        if (payload.is_ref()) {
          // Write 25% in place through a mapping (COW isolates us).
          auto region = co_await consumer->dmrpc()->Map(payload);
          std::vector<uint8_t> w(kWriteBytes, 0x77);
          (void)co_await region->Write(0, w.data(), w.size());
          (void)co_await region->Close();
          consumer->Detach(consumer->dmrpc()->Release(payload));
        }
        // (By-value consumers mutate their private copy for free.)
        resp.Append<uint8_t>(0);
        co_return resp;
      });
  Status st = msvc::RunToCompletion(&sim, cluster.InitAll());
  if (!st.ok()) LOG_FATAL << st.ToString();

  std::vector<uint8_t> block(kBlockBytes, 0x42);
  msvc::RequestFn fn = [&]() -> sim::Task<StatusOr<uint64_t>> {
    auto payload = co_await producer->dmrpc()->MakePayload(block);
    if (!payload.ok()) co_return payload.status();
    rpc::MsgBuffer req;
    payload->EncodeTo(&req);
    auto resp = co_await producer->CallService("proxy", kShare,
                                               std::move(req));
    if (!resp.ok()) co_return resp.status();
    co_return uint64_t{kBlockBytes};
  };
  msvc::WorkloadResult res = msvc::RunClosedLoop(
      &sim, fn, /*workers=*/1, env.Warmup(10 * kMillisecond),
      env.Measure(200 * kMillisecond));
  BenchObs::Record(std::string(msvc::BackendName(backend)) + "_share", &sim);
  return Outcome{res.throughput_rps() / 1e3, res.latency.mean() / 1e3, 0.0};
}

/// DSM model: a pool of shared regions in DM; the producer writes one
/// under an exclusive lock, the consumer reads it under a shared lock
/// and writes 25% back under an exclusive lock -- application-managed
/// synchronization at every step.
Outcome RunDsm() {
  BenchEnv env = BenchEnv::FromEnv();
  sim::Simulation sim(27);
  BenchObs::Arm(&sim);
  net::Fabric fabric(&sim, net::NetworkConfig{}, 6);
  dsm::LockServer lock_server(&fabric, 2);
  dmnet::DmServerConfig scfg;
  scfg.num_frames = 1u << 14;
  dmnet::DmServer dm_server(&fabric, 3, dmnet::kDmServerPort, scfg,
                            uint64_t{1} << 44);
  rpc::Rpc rpc_p(&fabric, 0, 1000);   // producer host
  rpc::Rpc rpc_c(&fabric, 1, 1000);   // consumer host
  rpc::Rpc rpc_x(&fabric, 4, 1000);   // proxy host (data mover)
  std::vector<dmnet::DmServerAddr> addrs{
      {3, dmnet::kDmServerPort, uint64_t{1} << 44, uint64_t{1} << 44}};
  dmnet::DmNetClient dm_p(&rpc_p, addrs);
  dmnet::DmNetClient dm_c(&rpc_c, addrs);
  dsm::DsmLockClient lock_p(&rpc_p, 2);
  dsm::DsmLockClient lock_c(&rpc_c, 2);

  // One long-lived shared region: the producer allocates it and shares a
  // Ref once; the consumer maps it once. From then on both sides address
  // the SAME pages and rely purely on the lock discipline -- writes go
  // in place, so the region must never be create_ref'd again (a COW
  // would silently unshare it). That subtlety is exactly the
  // programming-complexity cost Table I charges the DSM model.
  dm::RemoteAddr region_p = 0;  // producer's address of the region
  dm::RemoteAddr region_c = 0;  // consumer's address of the same pages
  uint64_t sync_ops = 0;
  std::vector<uint8_t> readbuf(kBlockBytes);
  std::vector<uint8_t> wr(kWriteBytes, 0x77);

  // Consumer-side service: on notification, read all + write 25% under
  // locks.
  rpc_c.RegisterHandler(
      kShare,
      [&](rpc::ReqContext, rpc::MsgBuffer req) -> sim::Task<rpc::MsgBuffer> {
        uint64_t lock_id = req.Read<uint64_t>();
        uint8_t expect = static_cast<uint8_t>(req.Read<uint32_t>());
        rpc::MsgBuffer resp;
        (void)co_await lock_c.Lock(lock_id, dsm::LockMode::kShared);
        Status r = co_await dm_c.Read(region_c, readbuf.data(),
                                      readbuf.size());
        (void)co_await lock_c.Unlock(lock_id, dsm::LockMode::kShared);
        if (!r.ok() || readbuf[0] != expect ||
            readbuf[kBlockBytes - 1] != expect) {
          // Shared mapping did not observe the producer's write.
          resp.Append<uint8_t>(1);
          co_return resp;
        }
        (void)co_await lock_c.Lock(lock_id, dsm::LockMode::kExclusive);
        Status w = co_await dm_c.WriteInPlace(region_c, wr.data(),
                                              wr.size());
        (void)co_await lock_c.Unlock(lock_id, dsm::LockMode::kExclusive);
        sync_ops += 4;
        resp.Append<uint8_t>(w.ok() ? 0 : 1);
        co_return resp;
      });
  // Proxy: forwards the (tiny) notification.
  rpc::SessionId proxy_to_consumer = 0;
  rpc_x.RegisterHandler(
      kShare,
      [&](rpc::ReqContext, rpc::MsgBuffer req) -> sim::Task<rpc::MsgBuffer> {
        auto resp = co_await rpc_x.Call(proxy_to_consumer, kShare,
                                        std::move(req));
        if (!resp.ok()) {
          rpc::MsgBuffer err;
          err.Append<uint8_t>(1);
          co_return err;
        }
        co_return std::move(*resp);
      });

  rpc::SessionId producer_to_proxy = 0;
  Status setup = msvc::RunToCompletion(&sim, [&]() -> sim::Task<Status> {
    Status a = co_await dm_p.Init();
    if (!a.ok()) co_return a;
    Status a2 = co_await dm_c.Init();
    if (!a2.ok()) co_return a2;
    Status b = co_await lock_p.Init();
    if (!b.ok()) co_return b;
    Status c = co_await lock_c.Init();
    if (!c.ok()) co_return c;
    auto va = co_await dm_p.Alloc(kBlockBytes);
    if (!va.ok()) co_return va.status();
    region_p = *va;
    // Establish the shared mapping once (setup-time, not per request).
    auto ref = co_await dm_p.CreateRef(region_p, kBlockBytes);
    if (!ref.ok()) co_return ref.status();
    auto vc = co_await dm_c.MapRef(*ref);
    if (!vc.ok()) co_return vc.status();
    region_c = *vc;
    // Both sides write through WriteInPlace (no COW): true DSM-style
    // shared mutable memory, consistent only thanks to the lock
    // discipline. Drop the bootstrap Ref's share; the two mappings keep
    // the pages alive.
    Status rel = co_await dm_p.ReleaseRef(*ref);
    if (!rel.ok()) co_return rel;
    auto sp = co_await rpc_p.Connect(4, 1000);
    if (!sp.ok()) co_return sp.status();
    producer_to_proxy = *sp;
    auto sx = co_await rpc_x.Connect(1, 1000);
    if (!sx.ok()) co_return sx.status();
    proxy_to_consumer = *sx;
    co_return Status::OK();
  }());
  DMRPC_CHECK(setup.ok()) << setup.ToString();

  std::vector<uint8_t> block(kBlockBytes);
  uint32_t round = 0;
  msvc::RequestFn fn = [&]() -> sim::Task<StatusOr<uint64_t>> {
    // Producer: exclusive lock, write the block in place, unlock.
    round++;
    std::fill(block.begin(), block.end(), static_cast<uint8_t>(round));
    (void)co_await lock_p.Lock(7, dsm::LockMode::kExclusive);
    Status w = co_await dm_p.WriteInPlace(region_p, block.data(),
                                          block.size());
    (void)co_await lock_p.Unlock(7, dsm::LockMode::kExclusive);
    sync_ops += 2;
    if (!w.ok()) co_return w;
    // Notify the consumer through the proxy (tiny message).
    rpc::MsgBuffer req;
    req.Append<uint64_t>(7);
    req.Append<uint32_t>(round);
    auto resp = co_await rpc_p.Call(producer_to_proxy, kShare,
                                    std::move(req));
    if (!resp.ok()) co_return resp.status();
    if (resp->Read<uint8_t>() != 0) co_return Status::Internal("dsm fail");
    co_return uint64_t{kBlockBytes};
  };
  msvc::WorkloadResult res = msvc::RunClosedLoop(
      &sim, fn, /*workers=*/1, env.Warmup(10 * kMillisecond),
      env.Measure(200 * kMillisecond));
  Outcome out{res.throughput_rps() / 1e3, res.latency.mean() / 1e3, 0.0};
  if (res.completed > 0) {
    out.sync_ops_per_req = static_cast<double>(sync_ops) / res.completed;
  }
  BenchObs::Record("dsm_share", &sim);
  return out;
}

/// Ray-like store: immutable copies (no in-place mutation possible; the
/// consumer mutates its private heap copy).
Outcome RunStore() {
  BenchEnv env = BenchEnv::FromEnv();
  sim::Simulation sim(28);
  BenchObs::Arm(&sim);
  net::Fabric fabric(&sim, net::NetworkConfig{}, 3);
  datastore::DataStoreNode store0(&fabric, 0);
  datastore::DataStoreNode store1(&fabric, 1);
  rpc::Rpc rpc_p(&fabric, 0, 1100);
  rpc::Rpc rpc_c(&fabric, 1, 1100);
  rpc::Rpc rpc_x(&fabric, 2, 1100);  // proxy host
  mem::MemoryConfig memory;

  // Consumer-side service: Get the object (remote fetch + two copies)
  // and mutate its private heap copy.
  rpc_c.RegisterHandler(
      kShare,
      [&](rpc::ReqContext, rpc::MsgBuffer req) -> sim::Task<rpc::MsgBuffer> {
        datastore::ObjectId id;
        id.owner = req.Read<uint32_t>();
        id.seq = req.Read<uint64_t>();
        rpc::MsgBuffer resp;
        auto copy = co_await store1.Get(id);
        if (!copy.ok()) {
          resp.Append<uint8_t>(1);
          co_return resp;
        }
        std::fill_n(copy->begin(), kWriteBytes, 0x77);
        co_await sim::Delay(memory.AccessNs(mem::MemKind::kLocalDram,
                                            kWriteBytes));
        resp.Append<uint8_t>(0);
        co_return resp;
      });
  rpc::SessionId proxy_to_consumer = 0;
  rpc_x.RegisterHandler(
      kShare,
      [&](rpc::ReqContext, rpc::MsgBuffer req) -> sim::Task<rpc::MsgBuffer> {
        auto resp = co_await rpc_x.Call(proxy_to_consumer, kShare,
                                        std::move(req));
        if (!resp.ok()) {
          rpc::MsgBuffer err;
          err.Append<uint8_t>(1);
          co_return err;
        }
        co_return std::move(*resp);
      });

  rpc::SessionId producer_to_proxy = 0;
  Status setup = msvc::RunToCompletion(&sim, [&]() -> sim::Task<Status> {
    auto sp = co_await rpc_p.Connect(2, 1100);
    if (!sp.ok()) co_return sp.status();
    producer_to_proxy = *sp;
    auto sx = co_await rpc_x.Connect(1, 1100);
    if (!sx.ok()) co_return sx.status();
    proxy_to_consumer = *sx;
    co_return Status::OK();
  }());
  DMRPC_CHECK(setup.ok()) << setup.ToString();

  std::vector<uint8_t> block(kBlockBytes, 0x42);
  msvc::RequestFn fn = [&]() -> sim::Task<StatusOr<uint64_t>> {
    auto id = co_await store0.Put(block.data(), block.size());
    if (!id.ok()) co_return id.status();
    rpc::MsgBuffer req;
    req.Append<uint32_t>(id->owner);
    req.Append<uint64_t>(id->seq);
    auto resp = co_await rpc_p.Call(producer_to_proxy, kShare,
                                    std::move(req));
    if (!resp.ok()) co_return resp.status();
    if (resp->Read<uint8_t>() != 0) co_return Status::Internal("get fail");
    (void)co_await store0.Delete(*id);
    co_return uint64_t{kBlockBytes};
  };
  msvc::WorkloadResult res = msvc::RunClosedLoop(
      &sim, fn, /*workers=*/1, env.Warmup(10 * kMillisecond),
      env.Measure(400 * kMillisecond));
  BenchObs::Record("store_share", &sim);
  return Outcome{res.throughput_rps() / 1e3, res.latency.mean() / 1e3, 0.0};
}

const Outcome& Run(Method m) {
  auto it = Cache().find(static_cast<int>(m));
  if (it != Cache().end()) return it->second;
  Outcome out;
  switch (m) {
    case Method::kRpcValue:
      out = RunRpcStyle(msvc::Backend::kErpc);
      break;
    case Method::kDsm:
      out = RunDsm();
      break;
    case Method::kDataStore:
      out = RunStore();
      break;
    case Method::kDmRpc:
      out = RunRpcStyle(msvc::Backend::kDmNet);
      break;
  }
  return Cache().emplace(static_cast<int>(m), out).first->second;
}

void BM_Sharing(benchmark::State& state) {
  auto m = static_cast<Method>(state.range(0));
  for (auto _ : state) {
    const Outcome& out = Run(m);
    state.counters["krps"] = out.krps;
    state.counters["lat_us"] = out.latency_us;
  }
  state.SetLabel(MethodName(m));
}

void RegisterAll() {
  for (Method m : {Method::kRpcValue, Method::kDsm, Method::kDataStore,
                   Method::kDmRpc}) {
    benchmark::RegisterBenchmark("table1/sharing_methods", BM_Sharing)
        ->Arg(static_cast<int64_t>(m))
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

void PrintPaperTables() {
  Table table(
      "Table I quantified: 32KB producer->consumer share + 25% in-place "
      "write, 1 thread",
      {"approach", "krps", "latency-us", "app-sync-ops/req", "semantics",
       "mutability"});
  auto row = [&](Method m, const char* semantics, const char* mutability) {
    const Outcome& out = Run(m);
    table.AddRow({MethodName(m), Table::Num(out.krps, 2),
                  Table::Num(out.latency_us, 1),
                  Table::Num(out.sync_ops_per_req, 0), semantics,
                  mutability});
  };
  row(Method::kRpcValue, "by-value", "private copy only");
  row(Method::kDsm, "by-reference", "shared, app-locked");
  row(Method::kDataStore, "by-reference", "immutable");
  row(Method::kDmRpc, "by-reference", "mutable via COW");
  table.Print();
}

}  // namespace
}  // namespace dmrpc::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  dmrpc::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  dmrpc::bench::PrintPaperTables();
  return 0;
}
