// Reproduces Fig. 8 (paper §VI-D): sharing a 32 KiB raw data block
// between two servers, single thread, with the remote side writing a
// varying percentage of the shared data.
//   8a: throughput vs write percentage.
//   8b: latency vs write percentage.
// Systems: DmRPC-net, DmRPC-CXL, Ray-like distributed in-memory object
// store (Plasma-style), Spark-like store (extra serialization).
//
// Expected shape: DmRPC is one to two orders of magnitude faster; its
// throughput falls as the write fraction rises (copy-on-write copies the
// written pages), while Ray/Spark are flat (they copy everything,
// unconditionally, regardless of the write fraction).

#include <benchmark/benchmark.h>

#include <map>
#include <vector>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "core/dmrpc.h"
#include "datastore/object_store.h"
#include "msvc/cluster.h"
#include "msvc/workload.h"

namespace dmrpc::bench {
namespace {

constexpr uint32_t kBlockBytes = 32768;

enum class System { kDmNet = 0, kDmCxl = 1, kRay = 2, kSpark = 3 };

const char* SystemName(System s) {
  switch (s) {
    case System::kDmNet:
      return "DmRPC-net";
    case System::kDmCxl:
      return "DmRPC-CXL";
    case System::kRay:
      return "Ray";
    case System::kSpark:
      return "Spark";
  }
  return "?";
}

struct Outcome {
  double krps = 0.0;
  double latency_us = 0.0;
};

std::map<std::pair<int, int>, Outcome>& Cache() {
  static auto* cache = new std::map<std::pair<int, int>, Outcome>();
  return *cache;
}

/// DmRPC flow: producer service PutRefs the block and sends the Ref to a
/// consumer service on another host, which maps it and writes `write_pct`
/// percent of the pages in place (copy-on-write), then acknowledges.
Outcome RunDmRpc(msvc::Backend backend, int write_pct) {
  BenchEnv env = BenchEnv::FromEnv();
  sim::Simulation sim(19);
  BenchObs::Arm(&sim);
  msvc::ClusterConfig cfg;
  cfg.backend = backend;
  cfg.num_nodes = 5;
  cfg.dm_frames = 1u << 15;
  msvc::Cluster cluster(&sim, cfg);
  msvc::ServiceEndpoint* producer = cluster.AddService("producer", 0, 1000);
  msvc::ServiceEndpoint* consumer = cluster.AddService("consumer", 1, 1000);

  constexpr rpc::ReqType kShare = 60;
  consumer->RegisterHandler(
      kShare,
      [consumer, write_pct](rpc::ReqContext,
                            rpc::MsgBuffer req) -> sim::Task<rpc::MsgBuffer> {
        core::Payload payload = core::Payload::DecodeFrom(&req);
        rpc::MsgBuffer resp;
        auto region = co_await consumer->dmrpc()->Map(payload);
        if (!region.ok()) {
          resp.Append<uint8_t>(1);
          co_return resp;
        }
        uint64_t to_write = payload.size() * write_pct / 100;
        if (to_write > 0) {
          std::vector<uint8_t> data(to_write, 0x77);
          Status ws = co_await region->Write(0, data.data(), to_write);
          if (!ws.ok()) {
            resp.Append<uint8_t>(1);
            co_return resp;
          }
        }
        (void)co_await region->Close();
        consumer->Detach(consumer->dmrpc()->Release(payload));
        resp.Append<uint8_t>(0);
        co_return resp;
      });

  Status st = msvc::RunToCompletion(&sim, cluster.InitAll());
  if (!st.ok()) LOG_FATAL << "init: " << st.ToString();

  std::vector<uint8_t> block(kBlockBytes, 0x42);
  msvc::RequestFn fn = [&]() -> sim::Task<StatusOr<uint64_t>> {
    auto payload = co_await producer->dmrpc()->MakePayload(block);
    if (!payload.ok()) co_return payload.status();
    rpc::MsgBuffer req;
    payload->EncodeTo(&req);
    auto resp = co_await producer->CallService("consumer", kShare,
                                               std::move(req));
    if (!resp.ok()) co_return resp.status();
    if (resp->Read<uint8_t>() != 0) co_return Status::Internal("share fail");
    co_return uint64_t{kBlockBytes};
  };
  // Single thread, synchronous (the paper's micro-benchmark).
  msvc::WorkloadResult res = msvc::RunClosedLoop(
      &sim, fn, /*workers=*/1, env.Warmup(10 * kMillisecond),
      env.Measure(200 * kMillisecond));
  BenchObs::Record(std::string(msvc::BackendName(backend)) + "_write" +
                       std::to_string(write_pct),
                   &sim);
  return Outcome{res.throughput_rps() / 1e3, res.latency.mean() / 1e3};
}

/// Ray/Spark flow: producer Puts the block into its local store, sends
/// the ObjectId over RPC; the consumer Gets it (remote fetch + two
/// unconditional copies) and writes into its private heap copy.
Outcome RunStore(bool spark, int write_pct) {
  BenchEnv env = BenchEnv::FromEnv();
  sim::Simulation sim(20);
  BenchObs::Arm(&sim);
  net::Fabric fabric(&sim, net::NetworkConfig{}, 2);
  datastore::DataStoreConfig dcfg = spark ? datastore::DataStoreConfig::Spark()
                                          : datastore::DataStoreConfig::Ray();
  datastore::DataStoreNode store0(&fabric, 0, dcfg);
  datastore::DataStoreNode store1(&fabric, 1, dcfg);
  rpc::Rpc producer(&fabric, 0, 1100);
  rpc::Rpc consumer(&fabric, 1, 1100);
  mem::MemoryConfig memory;

  constexpr rpc::ReqType kShare = 1;
  consumer.RegisterHandler(
      kShare,
      [&store1, &memory, write_pct](
          rpc::ReqContext, rpc::MsgBuffer req) -> sim::Task<rpc::MsgBuffer> {
        datastore::ObjectId id;
        id.owner = req.Read<uint32_t>();
        id.seq = req.Read<uint64_t>();
        rpc::MsgBuffer resp;
        auto copy = co_await store1.Get(id);
        if (!copy.ok()) {
          resp.Append<uint8_t>(1);
          co_return resp;
        }
        // Write into the private heap copy (plain local memory).
        uint64_t to_write = copy->size() * write_pct / 100;
        if (to_write > 0) {
          std::fill_n(copy->begin(), to_write, 0x77);
          co_await sim::Delay(memory.AccessNs(mem::MemKind::kLocalDram,
                                              to_write));
        }
        resp.Append<uint8_t>(0);
        co_return resp;
      });

  rpc::SessionId session = 0;
  Status setup = msvc::RunToCompletion(&sim, [&]() -> sim::Task<Status> {
    auto s = co_await producer.Connect(1, 1100);
    if (!s.ok()) co_return s.status();
    session = *s;
    co_return Status::OK();
  }());
  DMRPC_CHECK(setup.ok());

  std::vector<uint8_t> block(kBlockBytes, 0x42);
  msvc::RequestFn fn = [&]() -> sim::Task<StatusOr<uint64_t>> {
    auto id = co_await store0.Put(block.data(), block.size());
    if (!id.ok()) co_return id.status();
    rpc::MsgBuffer req;
    req.Append<uint32_t>(id->owner);
    req.Append<uint64_t>(id->seq);
    auto resp = co_await producer.Call(session, kShare, std::move(req));
    if (!resp.ok()) co_return resp.status();
    if (resp->Read<uint8_t>() != 0) co_return Status::Internal("get failed");
    (void)co_await store0.Delete(*id);
    co_return uint64_t{kBlockBytes};
  };
  msvc::WorkloadResult res = msvc::RunClosedLoop(
      &sim, fn, /*workers=*/1, env.Warmup(10 * kMillisecond),
      env.Measure(400 * kMillisecond));
  BenchObs::Record(std::string(spark ? "Spark" : "Ray") + "_write" +
                       std::to_string(write_pct),
                   &sim);
  return Outcome{res.throughput_rps() / 1e3, res.latency.mean() / 1e3};
}

const Outcome& Run(System system, int write_pct) {
  auto key = std::make_pair(static_cast<int>(system), write_pct);
  auto it = Cache().find(key);
  if (it != Cache().end()) return it->second;
  Outcome out;
  switch (system) {
    case System::kDmNet:
      out = RunDmRpc(msvc::Backend::kDmNet, write_pct);
      break;
    case System::kDmCxl:
      out = RunDmRpc(msvc::Backend::kDmCxl, write_pct);
      break;
    case System::kRay:
      out = RunStore(false, write_pct);
      break;
    case System::kSpark:
      out = RunStore(true, write_pct);
      break;
  }
  return Cache().emplace(key, out).first->second;
}

constexpr int kWritePcts[] = {0, 25, 50, 75, 100};

void BM_Share(benchmark::State& state) {
  auto system = static_cast<System>(state.range(0));
  int pct = static_cast<int>(state.range(1));
  for (auto _ : state) {
    const Outcome& out = Run(system, pct);
    state.counters["krps"] = out.krps;
    state.counters["lat_us"] = out.latency_us;
  }
  state.SetLabel(SystemName(system));
}

void RegisterAll() {
  for (System s :
       {System::kDmNet, System::kDmCxl, System::kRay, System::kSpark}) {
    for (int pct : kWritePcts) {
      benchmark::RegisterBenchmark("fig08/share_32k", BM_Share)
          ->Args({static_cast<int64_t>(s), pct})
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

void PrintPaperTables() {
  Table tput("Fig 8a: 32KB block sharing throughput (krps), 1 thread",
             {"write%", "DmRPC-net", "DmRPC-CXL", "Ray", "Spark",
              "net/Ray", "cxl/Ray"});
  Table lat("Fig 8b: 32KB block sharing latency (us)",
            {"write%", "DmRPC-net", "DmRPC-CXL", "Ray", "Spark"});
  for (int pct : kWritePcts) {
    const Outcome& net = Run(System::kDmNet, pct);
    const Outcome& cxl = Run(System::kDmCxl, pct);
    const Outcome& ray = Run(System::kRay, pct);
    const Outcome& spark = Run(System::kSpark, pct);
    tput.AddRow(
        {Table::Int(pct), Table::Num(net.krps, 2), Table::Num(cxl.krps, 2),
         Table::Num(ray.krps, 2), Table::Num(spark.krps, 2),
         Table::Num(ray.krps > 0 ? net.krps / ray.krps : 0, 1) + "x",
         Table::Num(ray.krps > 0 ? cxl.krps / ray.krps : 0, 1) + "x"});
    lat.AddRow({Table::Int(pct), Table::Num(net.latency_us, 1),
                Table::Num(cxl.latency_us, 1), Table::Num(ray.latency_us, 1),
                Table::Num(spark.latency_us, 1)});
  }
  tput.Print();
  lat.Print();
}

}  // namespace
}  // namespace dmrpc::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  dmrpc::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  dmrpc::bench::PrintPaperTables();
  return 0;
}
