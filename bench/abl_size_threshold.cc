// Ablation: the size-aware transfer threshold (paper §IV-B).
//
// DmRPC passes small arguments by value and large ones by reference; the
// crossover point is the inline_threshold. This bench sweeps argument
// size x threshold policy on the nested-chain workload (DmRPC-net,
// 5 hops) to locate the crossover and justify the default (1 KiB):
// always-by-ref pays DM round trips that dwarf small payloads;
// always-inline degenerates to eRPC for large payloads.

#include <benchmark/benchmark.h>

#include <map>

#include "apps/nested_chain.h"
#include "bench/bench_util.h"
#include "common/logging.h"
#include "msvc/cluster.h"
#include "msvc/workload.h"

namespace dmrpc::bench {
namespace {

// Threshold policies: 0 = always by-ref, huge = always inline.
constexpr uint64_t kThresholds[] = {0, 1024, 8192, uint64_t{1} << 40};
constexpr uint32_t kSizes[] = {64, 512, 4096, 32768, 262144};

const char* PolicyName(uint64_t threshold) {
  if (threshold == 0) return "always-ref";
  if (threshold == 1024) return "1KB(default)";
  if (threshold == 8192) return "8KB";
  return "always-inline";
}

std::map<std::pair<uint64_t, uint32_t>, msvc::WorkloadResult>& Cache() {
  static auto* cache =
      new std::map<std::pair<uint64_t, uint32_t>, msvc::WorkloadResult>();
  return *cache;
}

const msvc::WorkloadResult& RunOne(uint64_t threshold, uint32_t arg_bytes) {
  auto key = std::make_pair(threshold, arg_bytes);
  auto it = Cache().find(key);
  if (it != Cache().end()) return it->second;

  BenchEnv env = BenchEnv::FromEnv();
  sim::Simulation sim(21);
  BenchObs::Arm(&sim);
  msvc::ClusterConfig cfg;
  cfg.backend = msvc::Backend::kDmNet;
  cfg.num_nodes = 10;
  cfg.dm_frames = 1u << 16;
  cfg.dmrpc.inline_threshold = threshold;
  msvc::Cluster cluster(&sim, cfg);
  apps::NestedChainApp app(&cluster, 5, {1, 2, 3, 4, 5});
  msvc::ServiceEndpoint* client = cluster.AddService("client", 0, 1000);
  Status st = msvc::RunToCompletion(&sim, cluster.InitAll());
  if (!st.ok()) LOG_FATAL << "init: " << st.ToString();
  msvc::WorkloadResult res = msvc::RunClosedLoop(
      &sim, app.MakeRequestFn(client, arg_bytes), /*workers=*/8,
      env.Warmup(20 * kMillisecond), env.Measure(200 * kMillisecond));
  BenchObs::Record(std::string(PolicyName(threshold)) + "_" +
                       std::to_string(arg_bytes) + "B",
                   &sim);
  return Cache().emplace(key, std::move(res)).first->second;
}

void BM_Threshold(benchmark::State& state) {
  uint64_t threshold = kThresholds[state.range(0)];
  uint32_t bytes = static_cast<uint32_t>(state.range(1));
  for (auto _ : state) {
    const msvc::WorkloadResult& res = RunOne(threshold, bytes);
    state.counters["krps"] = res.throughput_rps() / 1e3;
    state.counters["avg_us"] = res.latency.mean() / 1e3;
  }
  state.SetLabel(PolicyName(threshold));
}

void RegisterAll() {
  for (int t = 0; t < 4; ++t) {
    for (uint32_t bytes : kSizes) {
      benchmark::RegisterBenchmark("abl/size_threshold", BM_Threshold)
          ->Args({t, bytes})
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

void PrintPaperTables() {
  Table table(
      "Ablation: size-aware threshold, nested chain (5 hops), krps",
      {"arg-size", "always-ref", "1KB(default)", "8KB", "always-inline"});
  for (uint32_t bytes : kSizes) {
    std::vector<std::string> row{FormatBytes(bytes)};
    for (uint64_t threshold : kThresholds) {
      row.push_back(Table::Num(RunOne(threshold, bytes).throughput_rps() / 1e3));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
}

}  // namespace
}  // namespace dmrpc::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  dmrpc::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  dmrpc::bench::PrintPaperTables();
  return 0;
}
