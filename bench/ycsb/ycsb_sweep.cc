// YCSB + TPC-C-lite sweep over the transactional KV store (src/kv): a
// shared B+-tree whose nodes live in disaggregated memory, reached
// through each of the three node-access modes (pass-by-value page
// caching, pass-by-ref in-place RPCs, CXL-shared G-FAM), with N client
// hosts running strict-2PL transactions against the grown
// dsm::LockServer.
//
// Workload mixes (operations per transaction in parentheses):
//   a     YCSB-A   50% read / 50% update           (1 op)
//   b     YCSB-B   95% read / 5% update            (1 op)
//   c     YCSB-C   100% read                       (1 op)
//   e     YCSB-E   95% short scan / 5% insert      (scan 1-12)
//   tpcc  TPC-C-lite: 50% new-order (district RMW + 5 item reads +
//         order insert), 50% payment (district RMW + customer RMW)
//
// Keys are drawn Zipfian (--zipf) from the loaded key space; inserts
// append fresh keys past it. Every (mode, workload, rate) point rebuilds
// the whole cluster from the same seed and drives it open-loop
// (src/workload arrival processes), so points are independent and any
// same-seed rerun is bit-identical -- --verify-determinism proves it by
// running every point twice and comparing metric fingerprints.
//
// Reported per point: goodput (committed txns), p50/p99/p999 txn
// latency, commit/abort/retry counters. Per series: the saturation knee
// (first rate whose p99 blows past 3x the lightest rate's p99 or whose
// goodput falls under 95% of offered). Everything lands in
// BENCH_ycsb.json (override with DMRPC_YCSB_JSON).
//
// Flags (defaults in Options):
//   --modes=value,ref,cxl         node-access modes to sweep
//   --workloads=a,b,c,e,tpcc      mixes to sweep
//   --policy=no-wait|wait-die     record-lock conflict policy
//   --clients=N                   compute-side client hosts
//   --keys=N                      loaded key-space size
//   --rates=20,40,80              offered load ladder, krps (txns)
//   --zipf=S                      key popularity skew
//   --seed=N --warmup-ms=N --measure-ms=N
//   --smoke                       small preset for CI
//   --verify-determinism          run every point twice, compare
//                                 fingerprints, exit 1 on divergence

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "common/random.h"
#include "kv/harness.h"
#include "msvc/workload.h"
#include "sim/simulation.h"
#include "workload/openloop.h"

namespace dmrpc::bench {
namespace {

enum class Mix : uint8_t { kA, kB, kC, kE, kTpcc };

/// Per-mix multiplier applied to the --rates ladder: scan-heavy E and
/// the district-bound TPC-C-lite saturate far below the point mixes, so
/// one base ladder straddles every knee.
double RateScale(Mix m) {
  return (m == Mix::kE || m == Mix::kTpcc) ? 0.5 : 1.0;
}

const char* MixName(Mix m) {
  switch (m) {
    case Mix::kA: return "ycsb-a";
    case Mix::kB: return "ycsb-b";
    case Mix::kC: return "ycsb-c";
    case Mix::kE: return "ycsb-e";
    case Mix::kTpcc: return "tpcc-lite";
  }
  return "?";
}

struct Options {
  std::vector<kv::AccessMode> modes = {kv::AccessMode::kByValue,
                                       kv::AccessMode::kByRef,
                                       kv::AccessMode::kCxlShared};
  std::vector<Mix> mixes = {Mix::kA, Mix::kB, Mix::kC, Mix::kE, Mix::kTpcc};
  kv::CcPolicy policy = kv::CcPolicy::kWaitDie;
  uint32_t clients = 8;
  uint64_t keys = 1024;
  uint32_t value_size = 100;
  /// Base ladder; per-mix RateScale() maps it onto each knee's range.
  /// 800 straddles the read-only ceiling (~640 krps for 8 clients).
  std::vector<double> rates_krps = {25, 50, 100, 200, 400, 800};
  uint64_t seed = 42;
  double zipf = 0.9;
  TimeNs warmup = 5 * kMillisecond;
  TimeNs measure = 20 * kMillisecond;
  bool smoke = false;
  bool verify = false;
};

uint64_t Fnv1a(const std::string& s) {
  uint64_t h = 14695981039346656037ull;
  for (char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

/// One measured (mode, mix, rate) point.
struct RatePoint {
  double offered_krps = 0;
  double goodput_krps = 0;
  double p50_us = 0;
  double p99_us = 0;
  double p999_us = 0;
  uint64_t offered = 0;
  uint64_t completed = 0;
  uint64_t failed = 0;
  uint64_t committed = 0;  // run totals (incl. warmup)
  uint64_t lock_aborts = 0;
  uint64_t retries = 0;
  uint64_t fingerprint = 0;
};

struct Series {
  kv::AccessMode mode;
  Mix mix;
  std::vector<RatePoint> points;
  double knee_krps = -1.0;
};

/// Builds one client's transaction source for `mix`. `next_insert` is
/// the shared fresh-key counter (inserts append past the loaded space).
msvc::RequestFn MakeSource(const Options& opt, kv::KvCluster* kvc,
                           uint32_t who, Mix mix, uint64_t* next_insert) {
  uint32_t vsize = opt.value_size;
  uint64_t keys = opt.keys;
  double zipf = opt.zipf;
  return [=]() -> sim::Task<StatusOr<uint64_t>> {
    Rng& rng = sim::Simulation::Current()->rng();
    kv::TxnMgr* mgr = kvc->txns(who);
    uint64_t bytes = 0;
    Status st;
    switch (mix) {
      case Mix::kA:
      case Mix::kB:
      case Mix::kC: {
        uint32_t update_pct = mix == Mix::kA ? 50 : (mix == Mix::kB ? 5 : 0);
        uint64_t key = rng.Zipf(keys, zipf);
        bool update = rng.Uniform(100) < update_pct;
        st = co_await mgr->RunTxn([&](kv::Txn& txn) -> sim::Task<Status> {
          if (update) {
            auto got = co_await txn.GetForUpdate(key);
            if (!got.ok()) co_return got.status();
            auto value = kv::KvCluster::MakeValue(key, vsize, txn.id());
            Status ps = co_await txn.Put(key, value.data());
            if (!ps.ok()) co_return ps;
          } else {
            auto got = co_await txn.Get(key);
            if (!got.ok()) co_return got.status();
          }
          bytes = vsize;
          co_return Status::OK();
        });
        break;
      }
      case Mix::kE: {
        bool insert = rng.Uniform(100) < 5;
        uint64_t start = rng.Zipf(keys, zipf);
        uint32_t len = 1 + rng.Uniform(12);
        uint64_t fresh = insert ? (*next_insert)++ : 0;
        st = co_await mgr->RunTxn([&](kv::Txn& txn) -> sim::Task<Status> {
          if (insert) {
            auto value = kv::KvCluster::MakeValue(fresh, vsize, txn.id());
            Status ps = co_await txn.Put(fresh, value.data());
            if (!ps.ok()) co_return ps;
            bytes = vsize;
          } else {
            auto r = co_await txn.Scan(start, len);
            if (!r.ok()) co_return r.status();
            bytes = r->size() * uint64_t{vsize};
          }
          co_return Status::OK();
        });
        break;
      }
      case Mix::kTpcc: {
        // Districts are the first 16 keys (hot); customers/items the
        // rest of the loaded space; orders append fresh keys.
        constexpr uint64_t kDistricts = 16;
        bool new_order = rng.Uniform(100) < 50;
        uint64_t district = rng.Uniform(kDistricts);
        uint64_t customer =
            kDistricts + rng.Zipf(keys - kDistricts, zipf);
        uint64_t items[5];
        for (uint64_t& it : items) {
          it = kDistricts + rng.Zipf(keys - kDistricts, zipf);
        }
        uint64_t order = new_order ? (*next_insert)++ : 0;
        st = co_await mgr->RunTxn([&](kv::Txn& txn) -> sim::Task<Status> {
          auto rmw = [&](uint64_t key) -> sim::Task<Status> {
            auto got = co_await txn.GetForUpdate(key);
            if (!got.ok()) co_return got.status();
            auto value = kv::KvCluster::MakeValue(key, vsize, txn.id());
            co_return co_await txn.Put(key, value.data());
          };
          Status ds = co_await rmw(district);
          if (!ds.ok()) co_return ds;
          bytes += vsize;
          if (new_order) {
            for (uint64_t it : items) {
              auto got = co_await txn.Get(it);
              if (!got.ok()) co_return got.status();
              bytes += vsize;
            }
            auto value = kv::KvCluster::MakeValue(order, vsize, txn.id());
            Status ps = co_await txn.Put(order, value.data());
            if (!ps.ok()) co_return ps;
            bytes += vsize;
          } else {
            Status cs = co_await rmw(customer);
            if (!cs.ok()) co_return cs;
            bytes += vsize;
          }
          co_return Status::OK();
        });
        break;
      }
    }
    if (!st.ok()) co_return st;
    co_return bytes;
  };
}

RatePoint RunOne(const Options& opt, kv::AccessMode mode, Mix mix,
                 double rate_krps, const char* label_suffix) {
  sim::Simulation sim(opt.seed);
  BenchObs::Arm(&sim);

  kv::KvClusterConfig cfg;
  cfg.mode = mode;
  cfg.policy = opt.policy;
  cfg.num_clients = opt.clients;
  cfg.value_size = opt.value_size;
  cfg.record_history = false;  // benchmark run: no checker overhead
  cfg.dm_frames = 1u << 17;
  kv::KvCluster kvc(&sim, cfg);

  auto boot = [&]() -> sim::Task<Status> {
    Status st = co_await kvc.Init();
    if (!st.ok()) co_return st;
    co_return co_await kvc.Load(opt.keys);
  };
  Status st = msvc::RunToCompletion(&sim, boot(), 600 * kSecond);
  if (!st.ok()) LOG_FATAL << "ycsb boot: " << st.ToString();

  uint64_t next_insert = opt.keys;
  std::vector<msvc::RequestFn> sources;
  for (uint32_t i = 0; i < opt.clients; ++i) {
    sources.push_back(MakeSource(opt, &kvc, i, mix, &next_insert));
  }
  workload::OpenLoopConfig wcfg;
  wcfg.rate_rps = rate_krps * 1000.0;
  // Admission cap: an unbounded open loop past the knee piles thousands
  // of waiters onto the hot locks and goodput collapses to zero; a
  // bounded pile keeps past-knee points on the contention plateau
  // (arrivals beyond it count as failed).
  wcfg.max_outstanding = 512;
  msvc::WorkloadResult res = workload::RunOpenLoopMulti(
      &sim, sources, wcfg, opt.warmup, opt.measure);

  RatePoint pt;
  pt.offered_krps = rate_krps;
  pt.goodput_krps = res.throughput_rps() / 1e3;
  pt.p50_us = res.latency.p50() / 1e3;
  pt.p99_us = res.latency.p99() / 1e3;
  pt.p999_us = res.latency.p999() / 1e3;
  pt.offered = res.offered;
  pt.completed = res.completed;
  pt.failed = res.failed;
  for (uint32_t i = 0; i < opt.clients; ++i) {
    pt.committed += kvc.txns(i)->stats().committed;
    pt.lock_aborts += kvc.txns(i)->stats().lock_aborts;
    pt.retries += kvc.txns(i)->stats().retries;
  }
  pt.fingerprint = Fnv1a(sim.DumpMetricsJson());
  char label[96];
  std::snprintf(label, sizeof(label), "%s_%s_%gkrps%s",
                kv::AccessModeName(mode), MixName(mix), rate_krps,
                label_suffix);
  BenchObs::Record(label, &sim);
  return pt;
}

/// First rate past the saturation knee, or -1 when the sweep stayed flat.
double KneeKrps(const std::vector<RatePoint>& points) {
  if (points.empty()) return -1.0;
  const RatePoint& base = points.front();
  for (const RatePoint& p : points) {
    bool latency_blown = base.p99_us > 0 && p.p99_us > 3.0 * base.p99_us;
    // Compare against the arrivals the window actually offered (short
    // windows sit a few percent off the nominal rate), not the nominal.
    bool goodput_lost =
        p.completed < static_cast<uint64_t>(0.95 * p.offered);
    if (latency_blown || goodput_lost) return p.offered_krps;
  }
  return -1.0;
}

void WriteJson(const Options& opt, const std::vector<Series>& series,
               bool verified) {
  const char* path = std::getenv("DMRPC_YCSB_JSON");
  if (path == nullptr || path[0] == '\0') path = "BENCH_ycsb.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) LOG_FATAL << "cannot write " << path;
  std::fprintf(f, "{\n  \"bench\": \"ycsb_sweep\",\n");
  std::fprintf(f,
               "  \"config\": {\"clients\": %u, \"keys\": %" PRIu64
               ", \"value_size\": %u, \"policy\": \"%s\", \"zipf\": %g, "
               "\"seed\": %" PRIu64 ", \"warmup_ms\": %" PRId64
               ", \"measure_ms\": %" PRId64 "},\n",
               opt.clients, opt.keys, opt.value_size,
               kv::CcPolicyName(opt.policy), opt.zipf, opt.seed,
               opt.warmup / kMillisecond, opt.measure / kMillisecond);
  std::fprintf(f, "  \"series\": [\n");
  for (size_t s = 0; s < series.size(); ++s) {
    const Series& sr = series[s];
    std::fprintf(f, "    {\"mode\": \"%s\", \"workload\": \"%s\", ",
                 kv::AccessModeName(sr.mode), MixName(sr.mix));
    if (sr.knee_krps > 0) {
      std::fprintf(f, "\"knee_krps\": %g, \"points\": [\n", sr.knee_krps);
    } else {
      std::fprintf(f, "\"knee_krps\": null, \"points\": [\n");
    }
    for (size_t i = 0; i < sr.points.size(); ++i) {
      const RatePoint& p = sr.points[i];
      std::fprintf(
          f,
          "      {\"offered_krps\": %g, \"goodput_krps\": %.2f, "
          "\"p50_us\": %.2f, \"p99_us\": %.2f, \"p999_us\": %.2f, "
          "\"offered\": %" PRIu64 ", \"completed\": %" PRIu64
          ", \"failed\": %" PRIu64 ", \"committed\": %" PRIu64
          ", \"lock_aborts\": %" PRIu64 ", \"retries\": %" PRIu64
          ", \"metrics_fingerprint\": \"%016" PRIx64 "\"}%s\n",
          p.offered_krps, p.goodput_krps, p.p50_us, p.p99_us, p.p999_us,
          p.offered, p.completed, p.failed, p.committed, p.lock_aborts,
          p.retries, p.fingerprint, i + 1 < sr.points.size() ? "," : "");
    }
    std::fprintf(f, "    ]}%s\n", s + 1 < series.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"determinism\": \"%s\"\n}\n",
               verified ? "verified" : "unverified");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

bool ParseRates(const char* s, std::vector<double>* out) {
  out->clear();
  while (*s != '\0') {
    char* end = nullptr;
    double v = std::strtod(s, &end);
    if (end == s || v <= 0) return false;
    out->push_back(v);
    s = end;
    if (*s == ',') ++s;
  }
  return !out->empty();
}

bool ParseModes(const char* s, std::vector<kv::AccessMode>* out) {
  out->clear();
  std::string tok;
  for (const char* p = s;; ++p) {
    if (*p != ',' && *p != '\0') {
      tok += *p;
      continue;
    }
    if (tok == "value") {
      out->push_back(kv::AccessMode::kByValue);
    } else if (tok == "ref") {
      out->push_back(kv::AccessMode::kByRef);
    } else if (tok == "cxl") {
      out->push_back(kv::AccessMode::kCxlShared);
    } else {
      return false;
    }
    tok.clear();
    if (*p == '\0') break;
  }
  return !out->empty();
}

bool ParseMixes(const char* s, std::vector<Mix>* out) {
  out->clear();
  std::string tok;
  for (const char* p = s;; ++p) {
    if (*p != ',' && *p != '\0') {
      tok += *p;
      continue;
    }
    if (tok == "a") {
      out->push_back(Mix::kA);
    } else if (tok == "b") {
      out->push_back(Mix::kB);
    } else if (tok == "c") {
      out->push_back(Mix::kC);
    } else if (tok == "e") {
      out->push_back(Mix::kE);
    } else if (tok == "tpcc") {
      out->push_back(Mix::kTpcc);
    } else {
      return false;
    }
    tok.clear();
    if (*p == '\0') break;
  }
  return !out->empty();
}

bool ParseOptions(int argc, char** argv, Options* opt) {
  // --smoke first, so explicit flags override the preset in either order.
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      opt->smoke = true;
      opt->clients = 4;
      opt->keys = 256;
      opt->mixes = {Mix::kA, Mix::kE};
      opt->rates_krps = {25, 100};
      opt->warmup = 2 * kMillisecond;
      opt->measure = 5 * kMillisecond;
    }
  }
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    auto val = [&](const char* flag) -> const char* {
      size_t n = std::strlen(flag);
      if (std::strncmp(a, flag, n) == 0 && a[n] == '=') return a + n + 1;
      return nullptr;
    };
    const char* v = nullptr;
    if (std::strcmp(a, "--smoke") == 0) {
      continue;
    } else if (std::strcmp(a, "--verify-determinism") == 0) {
      opt->verify = true;
    } else if ((v = val("--clients")) != nullptr) {
      opt->clients = static_cast<uint32_t>(std::atoi(v));
    } else if ((v = val("--keys")) != nullptr) {
      opt->keys = static_cast<uint64_t>(std::atoll(v));
    } else if ((v = val("--value-size")) != nullptr) {
      opt->value_size = static_cast<uint32_t>(std::atoi(v));
    } else if ((v = val("--seed")) != nullptr) {
      opt->seed = static_cast<uint64_t>(std::atoll(v));
    } else if ((v = val("--zipf")) != nullptr) {
      opt->zipf = std::atof(v);
    } else if ((v = val("--warmup-ms")) != nullptr) {
      opt->warmup = std::atoll(v) * kMillisecond;
    } else if ((v = val("--measure-ms")) != nullptr) {
      opt->measure = std::atoll(v) * kMillisecond;
    } else if ((v = val("--rates")) != nullptr) {
      if (!ParseRates(v, &opt->rates_krps)) {
        std::fprintf(stderr, "bad --rates: %s\n", v);
        return false;
      }
    } else if ((v = val("--modes")) != nullptr) {
      if (!ParseModes(v, &opt->modes)) {
        std::fprintf(stderr, "bad --modes: %s\n", v);
        return false;
      }
    } else if ((v = val("--workloads")) != nullptr) {
      if (!ParseMixes(v, &opt->mixes)) {
        std::fprintf(stderr, "bad --workloads: %s\n", v);
        return false;
      }
    } else if ((v = val("--policy")) != nullptr) {
      if (std::strcmp(v, "no-wait") == 0) {
        opt->policy = kv::CcPolicy::kNoWait;
      } else if (std::strcmp(v, "wait-die") == 0) {
        opt->policy = kv::CcPolicy::kWaitDie;
      } else {
        std::fprintf(stderr, "bad --policy: %s\n", v);
        return false;
      }
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", a);
      return false;
    }
  }
  return true;
}

int Main(int argc, char** argv) {
  Options opt;
  if (!ParseOptions(argc, argv, &opt)) return 2;

  std::printf("ycsb_sweep: %u clients, %" PRIu64
              " keys, zipf %g, policy %s\n",
              opt.clients, opt.keys, opt.zipf, kv::CcPolicyName(opt.policy));

  std::vector<Series> series;
  bool determinism_ok = true;
  for (kv::AccessMode mode : opt.modes) {
    for (Mix mix : opt.mixes) {
      Series sr;
      sr.mode = mode;
      sr.mix = mix;
      std::printf("-- %s / %s\n", kv::AccessModeName(mode), MixName(mix));
      for (double base_rate : opt.rates_krps) {
        double rate = base_rate * RateScale(mix);
        RatePoint pt = RunOne(opt, mode, mix, rate, "");
        if (opt.verify) {
          RatePoint again = RunOne(opt, mode, mix, rate, "_rerun");
          if (again.fingerprint != pt.fingerprint ||
              again.completed != pt.completed || again.p99_us != pt.p99_us) {
            std::fprintf(stderr,
                         "DETERMINISM FAILURE %s/%s at %g krps: "
                         "fingerprints %016" PRIx64 " vs %016" PRIx64 "\n",
                         kv::AccessModeName(mode), MixName(mix), rate,
                         pt.fingerprint, again.fingerprint);
            determinism_ok = false;
          }
        }
        std::printf("  %6.1f krps: goodput %7.2f krps  p50 %7.1f us  "
                    "p99 %7.1f us  aborts %" PRIu64 "  retries %" PRIu64 "\n",
                    pt.offered_krps, pt.goodput_krps, pt.p50_us, pt.p99_us,
                    pt.lock_aborts, pt.retries);
        sr.points.push_back(pt);
      }
      sr.knee_krps = KneeKrps(sr.points);
      series.push_back(std::move(sr));
    }
  }

  Table table("YCSB / TPC-C-lite: access modes vs saturation knee",
              {"workload", "mode", "knee-krps", "peak-goodput-krps",
               "p50-us@low", "p99-us@low"});
  for (const Series& sr : series) {
    double peak = 0;
    for (const RatePoint& p : sr.points) {
      if (p.goodput_krps > peak) peak = p.goodput_krps;
    }
    table.AddRow({MixName(sr.mix), kv::AccessModeName(sr.mode),
                  sr.knee_krps > 0 ? Table::Num(sr.knee_krps) : "none",
                  Table::Num(peak), Table::Num(sr.points.front().p50_us),
                  Table::Num(sr.points.front().p99_us)});
  }
  table.Print();

  WriteJson(opt, series, opt.verify && determinism_ok);
  if (opt.verify && !determinism_ok) return 1;
  return 0;
}

}  // namespace
}  // namespace dmrpc::bench

int main(int argc, char** argv) { return dmrpc::bench::Main(argc, argv); }
