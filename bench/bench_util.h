#ifndef DMRPC_BENCH_BENCH_UTIL_H_
#define DMRPC_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"
#include "msvc/workload.h"

namespace dmrpc::bench {

/// Aligned-column table printer: each bench binary prints the rows/series
/// of the paper figure it regenerates in this format, so EXPERIMENTS.md
/// can quote them directly.
class Table {
 public:
  Table(std::string title, std::vector<std::string> columns);

  void AddRow(std::vector<std::string> cells);
  void Print() const;

  /// Formats a double with `digits` decimals.
  static std::string Num(double v, int digits = 1);
  static std::string Int(uint64_t v);

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Global knobs for bench runs, read from the environment:
///   DMRPC_BENCH_SCALE: multiplies measurement windows (default 1.0;
///     use 0.2 for a quick smoke run, 5 for tighter confidence).
struct BenchEnv {
  double scale = 1.0;

  static BenchEnv FromEnv();

  TimeNs Warmup(TimeNs base) const {
    return static_cast<TimeNs>(base * scale);
  }
  TimeNs Measure(TimeNs base) const {
    return static_cast<TimeNs>(base * scale);
  }
};

/// Standard one-line summary of a workload result.
std::string Summarize(const msvc::WorkloadResult& res);

}  // namespace dmrpc::bench

#endif  // DMRPC_BENCH_BENCH_UTIL_H_
