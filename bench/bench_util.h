#ifndef DMRPC_BENCH_BENCH_UTIL_H_
#define DMRPC_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"
#include "msvc/workload.h"
#include "sim/simulation.h"

namespace dmrpc::bench {

/// Aligned-column table printer: each bench binary prints the rows/series
/// of the paper figure it regenerates in this format, so EXPERIMENTS.md
/// can quote them directly.
class Table {
 public:
  Table(std::string title, std::vector<std::string> columns);

  void AddRow(std::vector<std::string> cells);
  void Print() const;

  /// Formats a double with `digits` decimals.
  static std::string Num(double v, int digits = 1);
  static std::string Int(uint64_t v);

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Global knobs for bench runs, read from the environment:
///   DMRPC_BENCH_SCALE: multiplies measurement windows (default 1.0;
///     use 0.2 for a quick smoke run, 5 for tighter confidence).
struct BenchEnv {
  double scale = 1.0;

  static BenchEnv FromEnv();

  TimeNs Warmup(TimeNs base) const {
    return static_cast<TimeNs>(base * scale);
  }
  TimeNs Measure(TimeNs base) const {
    return static_cast<TimeNs>(base * scale);
  }
};

/// Standard one-line summary of a workload result.
std::string Summarize(const msvc::WorkloadResult& res);

/// Machine-readable observability sidecar for bench binaries.
///
/// Every bench calls Arm() right after constructing each Simulation and
/// Record() once that simulation's run is over. On process exit the
/// collected per-run metrics dumps are written as one JSON file next to
/// the binary's working directory:
///
///   <bench>.metrics.json        {"bench": "...", "runs": {label: {...}}}
///
/// where <bench> is the executable name (override the full path with
/// DMRPC_METRICS_PATH). The file is rewritten after every Record() so
/// already-recorded runs survive a later scenario aborting the process.
///
/// Setting DMRPC_TRACE_DIR additionally enables the simulation's event
/// tracer and writes three sidecars per run under that directory:
///
///   <bench>_<label>.trace.json     Chrome trace_event file (load it in
///                                  chrome://tracing or ui.perfetto.dev)
///   <bench>_<label>.trace.jsonl    raw record dump, one JSON per line
///                                  (input format of trace_analyze)
///   <bench>_<label>.breakdown.txt  per-request critical-path latency
///                                  breakdown by layer and by hop
///                                  (obs::TraceAnalysis::TextReport)
///
/// Setting DMRPC_TIMELINE_US=<interval in virtual microseconds> arms the
/// simulation's virtual-time timeline sampler (sim::Simulation::
/// EnableTimeline) and writes two more sidecars per run, under
/// DMRPC_TIMELINE_DIR if set, else the working directory:
///
///   <bench>_<label>.timeline.jsonl  one JSON object per sampled window
///                                   (obs::TimelineRecorder::ToJsonLines;
///                                   byte-identical across worker-thread
///                                   counts)
///   <bench>_<label>.counters.json   Chrome/Perfetto counter-track file
///                                   (per-window rates, gauge levels,
///                                   p99s, SLO burn rates)
class BenchObs {
 public:
  /// Enables tracing on `sim` when DMRPC_TRACE_DIR is set.
  static void Arm(sim::Simulation* sim);

  /// Stores sim->DumpMetricsJson() under `label` (labels must be unique
  /// within a binary) and flushes the pending Chrome trace, if armed.
  static void Record(const std::string& label, sim::Simulation* sim);
};

}  // namespace dmrpc::bench

#endif  // DMRPC_BENCH_BENCH_UTIL_H_
