// Reproduces Fig. 12 (paper §VI-G): DmRPC-CXL's sensitivity to the CXL
// memory-pool access latency, sweeping it from 165 ns (no switch) to
// 565 ns, normalized to the fastest point.
//   12a: the §VI-D micro-benchmark (32 KiB block sharing, 50% writes).
//   12b: the cloud image processing application (4 KiB images).
//
// Expected shape: throughput decreases only mildly across the sweep --
// the paper's argument that its 265 ns emulation point is robust.

#include <benchmark/benchmark.h>

#include <map>
#include <vector>

#include "apps/image_pipeline.h"
#include "bench/bench_util.h"
#include "common/logging.h"
#include "core/dmrpc.h"
#include "msvc/cluster.h"
#include "msvc/workload.h"

namespace dmrpc::bench {
namespace {

constexpr TimeNs kLatenciesNs[] = {165, 265, 365, 465, 565};

std::map<std::pair<int, TimeNs>, double>& Cache() {
  static auto* cache = new std::map<std::pair<int, TimeNs>, double>();
  return *cache;
}

/// 12a workload: 32 KiB block shared producer -> consumer, 50% written.
double RunMicro(TimeNs cxl_latency) {
  BenchEnv env = BenchEnv::FromEnv();
  sim::Simulation sim(12);
  BenchObs::Arm(&sim);
  msvc::ClusterConfig cfg;
  cfg.backend = msvc::Backend::kDmCxl;
  cfg.num_nodes = 5;
  cfg.dm_frames = 1u << 15;
  cfg.memory.cxl_latency_ns = cxl_latency;
  msvc::Cluster cluster(&sim, cfg);
  msvc::ServiceEndpoint* producer = cluster.AddService("producer", 0, 1000);
  msvc::ServiceEndpoint* consumer = cluster.AddService("consumer", 1, 1000);

  constexpr rpc::ReqType kShare = 60;
  consumer->RegisterHandler(
      kShare, [consumer](rpc::ReqContext,
                         rpc::MsgBuffer req) -> sim::Task<rpc::MsgBuffer> {
        core::Payload payload = core::Payload::DecodeFrom(&req);
        rpc::MsgBuffer resp;
        auto region = co_await consumer->dmrpc()->Map(payload);
        if (!region.ok()) {
          resp.Append<uint8_t>(1);
          co_return resp;
        }
        std::vector<uint8_t> data(16384, 0x77);  // 50% of 32 KiB
        (void)co_await region->Write(0, data.data(), data.size());
        (void)co_await region->Close();
        consumer->Detach(consumer->dmrpc()->Release(payload));
        resp.Append<uint8_t>(0);
        co_return resp;
      });
  Status st = msvc::RunToCompletion(&sim, cluster.InitAll());
  if (!st.ok()) LOG_FATAL << "init: " << st.ToString();

  std::vector<uint8_t> block(32768, 0x42);
  msvc::RequestFn fn = [&]() -> sim::Task<StatusOr<uint64_t>> {
    auto payload = co_await producer->dmrpc()->MakePayload(block);
    if (!payload.ok()) co_return payload.status();
    rpc::MsgBuffer req;
    payload->EncodeTo(&req);
    auto resp = co_await producer->CallService("consumer", kShare,
                                               std::move(req));
    if (!resp.ok()) co_return resp.status();
    co_return uint64_t{32768};
  };
  msvc::WorkloadResult res = msvc::RunClosedLoop(
      &sim, fn, /*workers=*/4, env.Warmup(10 * kMillisecond),
      env.Measure(200 * kMillisecond));
  BenchObs::Record("micro-32k_" + std::to_string(cxl_latency) + "ns", &sim);
  return res.throughput_rps();
}

/// 12b workload: the image pipeline at 4 KiB.
double RunImageApp(TimeNs cxl_latency) {
  BenchEnv env = BenchEnv::FromEnv();
  sim::Simulation sim(13);
  BenchObs::Arm(&sim);
  msvc::ClusterConfig cfg;
  cfg.backend = msvc::Backend::kDmCxl;
  cfg.num_nodes = 10;
  cfg.dm_frames = 1u << 16;
  cfg.memory.cxl_latency_ns = cxl_latency;
  msvc::Cluster cluster(&sim, cfg);
  apps::ImagePipelineApp app(&cluster, {1, 2, 3, 4, 5, 6});
  msvc::ServiceEndpoint* client = cluster.AddService("client", 0, 1000, 4);
  Status st = msvc::RunToCompletion(&sim, cluster.InitAll());
  if (!st.ok()) LOG_FATAL << "init: " << st.ToString();
  msvc::WorkloadResult res = msvc::RunClosedLoop(
      &sim, app.MakeRequestFn(client, 4096), /*workers=*/16,
      env.Warmup(30 * kMillisecond), env.Measure(250 * kMillisecond));
  BenchObs::Record("image-4k_" + std::to_string(cxl_latency) + "ns", &sim);
  return res.throughput_rps();
}

double Run(int which, TimeNs latency) {
  auto key = std::make_pair(which, latency);
  auto it = Cache().find(key);
  if (it != Cache().end()) return it->second;
  double rps = which == 0 ? RunMicro(latency) : RunImageApp(latency);
  return Cache().emplace(key, rps).first->second;
}

void BM_CxlLatency(benchmark::State& state) {
  int which = static_cast<int>(state.range(0));
  TimeNs latency = state.range(1);
  for (auto _ : state) {
    state.counters["rps"] = Run(which, latency);
    state.counters["normalized"] = Run(which, latency) / Run(which, 165);
  }
  state.SetLabel(which == 0 ? "micro-32k" : "image-4k");
}

void RegisterAll() {
  for (int which : {0, 1}) {
    for (TimeNs latency : kLatenciesNs) {
      benchmark::RegisterBenchmark("fig12/cxl_latency", BM_CxlLatency)
          ->Args({which, latency})
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

void PrintPaperTables() {
  Table table("Fig 12: DmRPC-CXL normalized throughput vs CXL latency",
              {"latency-ns", "micro-krps", "micro-norm", "image-krps",
               "image-norm"});
  for (TimeNs latency : kLatenciesNs) {
    table.AddRow({Table::Int(latency), Table::Num(Run(0, latency) / 1e3),
                  Table::Num(Run(0, latency) / Run(0, 165), 3),
                  Table::Num(Run(1, latency) / 1e3),
                  Table::Num(Run(1, latency) / Run(1, 165), 3)});
  }
  table.Print();
}

}  // namespace
}  // namespace dmrpc::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  dmrpc::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  dmrpc::bench::PrintPaperTables();
  return 0;
}
