// Seeded chaos sweep runner (the full-size companion of tests/chaos_test).
//
// Runs RunChaosIteration over a contiguous seed range and exits non-zero
// if any seed violates an invariant. Failing seeds are appended to an
// artifact file (one seed + summary per line) so CI can upload them and a
// developer can replay a single seed deterministically:
//
//   ./chaos_runner --seeds=500                 # seeds 1..500
//   ./chaos_runner --first-seed=17 --seeds=1   # replay seed 17 verbosely
//   ./chaos_runner --verify-determinism        # rerun each seed twice
//
// Options:
//   --seeds=N              number of seeds to run (default 200)
//   --first-seed=S         first seed of the range (default 1)
//   --ops-per-actor=N      workload length per actor (default 25)
//   --actors=N             actor services (default 3)
//   --no-crashes           links-only schedules
//   --verify-determinism   run every seed twice, compare fingerprints
//   --artifact=PATH        failing-seed file (default chaos_failures.txt)
//   --verbose              print every seed's summary, not just failures

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "msvc/chaos.h"

namespace {

struct Args {
  int seeds = 200;
  uint64_t first_seed = 1;
  int ops_per_actor = 25;
  int actors = 3;
  bool crashes = true;
  bool verify_determinism = false;
  std::string artifact = "chaos_failures.txt";
  bool verbose = false;
};

bool ParseInt(const char* arg, const char* flag, int* out) {
  size_t len = std::strlen(flag);
  if (std::strncmp(arg, flag, len) != 0 || arg[len] != '=') return false;
  *out = std::atoi(arg + len + 1);
  return true;
}

Args Parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    int v = 0;
    if (ParseInt(arg, "--seeds", &a.seeds)) {
    } else if (ParseInt(arg, "--first-seed", &v)) {
      a.first_seed = static_cast<uint64_t>(v);
    } else if (ParseInt(arg, "--ops-per-actor", &a.ops_per_actor)) {
    } else if (ParseInt(arg, "--actors", &a.actors)) {
    } else if (std::strcmp(arg, "--no-crashes") == 0) {
      a.crashes = false;
    } else if (std::strcmp(arg, "--verify-determinism") == 0) {
      a.verify_determinism = true;
    } else if (std::strncmp(arg, "--artifact=", 11) == 0) {
      a.artifact = arg + 11;
    } else if (std::strcmp(arg, "--verbose") == 0) {
      a.verbose = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg);
      std::exit(2);
    }
  }
  return a;
}

}  // namespace

int main(int argc, char** argv) {
  using dmrpc::msvc::ChaosOptions;
  using dmrpc::msvc::ChaosReport;
  using dmrpc::msvc::RunChaosIteration;

  Args args = Parse(argc, argv);
  std::ofstream artifact;  // opened lazily on the first failure

  int failures = 0;
  uint64_t total_ops = 0, total_crashes = 0, total_dropped = 0;
  for (int i = 0; i < args.seeds; ++i) {
    uint64_t seed = args.first_seed + static_cast<uint64_t>(i);
    ChaosOptions opts;
    opts.seed = seed;
    opts.num_actors = args.actors;
    opts.ops_per_actor = args.ops_per_actor;
    opts.inject_crashes = args.crashes;
    ChaosReport rep = RunChaosIteration(opts);

    bool failed = !rep.ok;
    if (args.verify_determinism && rep.ok) {
      ChaosReport rerun = RunChaosIteration(opts);
      if (rerun.executed_events != rep.executed_events ||
          rerun.metrics_json != rep.metrics_json) {
        failed = true;
        rep.violations.push_back("rerun of the same seed diverged");
      }
    }

    total_ops += rep.ops_attempted;
    total_crashes += rep.faults.crashes;
    total_dropped += rep.faults.dropped;
    if (failed) {
      failures++;
      std::string line = rep.Summary(seed);
      std::fprintf(stderr, "FAIL %s\n", line.c_str());
      if (!artifact.is_open()) artifact.open(args.artifact);
      artifact << line << "\n";
    } else if (args.verbose) {
      std::printf("%s\n", rep.Summary(seed).c_str());
    }
  }

  std::printf(
      "chaos sweep: %d seeds (%llu..%llu), %d failed; "
      "%llu ops, %llu crashes, %llu packets dropped by faults\n",
      args.seeds, static_cast<unsigned long long>(args.first_seed),
      static_cast<unsigned long long>(args.first_seed + args.seeds - 1),
      failures, static_cast<unsigned long long>(total_ops),
      static_cast<unsigned long long>(total_crashes),
      static_cast<unsigned long long>(total_dropped));
  if (failures > 0) {
    std::fprintf(stderr, "failing seeds written to %s\n",
                 args.artifact.c_str());
    return 1;
  }
  return 0;
}
