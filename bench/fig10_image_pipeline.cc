// Reproduces Fig. 10 (paper §VI-E): the synthetic 7-tier Cloud Image
// Processing application.
//   10a: end-to-end throughput (Gbps of image data) vs image size.
//   10b: average / p99 / p99.5 / p99.9 latency at 4 KiB images.
//
// Expected shape: eRPC's throughput stays low and roughly flat as image
// size grows (every tier moves every byte); DmRPC-net and DmRPC-CXL
// scale up with image size, CXL on top; at 4 KiB the latency order is
// CXL < net < eRPC.

#include <benchmark/benchmark.h>

#include <map>

#include "apps/image_pipeline.h"
#include "bench/bench_util.h"
#include "common/logging.h"
#include "msvc/cluster.h"
#include "msvc/workload.h"

namespace dmrpc::bench {
namespace {

std::map<std::pair<int, uint32_t>, msvc::WorkloadResult>& Cache() {
  static auto* cache =
      new std::map<std::pair<int, uint32_t>, msvc::WorkloadResult>();
  return *cache;
}

const msvc::WorkloadResult& RunPipeline(msvc::Backend backend,
                                        uint32_t image_bytes) {
  auto key = std::make_pair(static_cast<int>(backend), image_bytes);
  auto it = Cache().find(key);
  if (it != Cache().end()) return it->second;

  BenchEnv env = BenchEnv::FromEnv();
  sim::Simulation sim(10);
  BenchObs::Arm(&sim);
  msvc::ClusterConfig cfg;
  cfg.backend = backend;
  cfg.num_nodes = 10;
  cfg.dm_frames = 1u << 16;
  msvc::Cluster cluster(&sim, cfg);
  apps::ImagePipelineApp app(&cluster, {1, 2, 3, 4, 5, 6});
  msvc::ServiceEndpoint* client = cluster.AddService("client", 0, 1000, 4);
  Status st = msvc::RunToCompletion(&sim, cluster.InitAll());
  if (!st.ok()) LOG_FATAL << "init: " << st.ToString();

  msvc::WorkloadResult res = msvc::RunClosedLoop(
      &sim, app.MakeRequestFn(client, image_bytes), /*workers=*/16,
      env.Warmup(30 * kMillisecond), env.Measure(300 * kMillisecond));
  BenchObs::Record(std::string(msvc::BackendName(backend)) + "_" +
                       std::to_string(image_bytes) + "B",
                   &sim);
  return Cache().emplace(key, std::move(res)).first->second;
}

constexpr uint32_t kSizes[] = {1024, 4096, 16384, 65536, 262144};

void BM_ImagePipeline(benchmark::State& state) {
  auto backend = static_cast<msvc::Backend>(state.range(0));
  uint32_t bytes = static_cast<uint32_t>(state.range(1));
  for (auto _ : state) {
    const msvc::WorkloadResult& res = RunPipeline(backend, bytes);
    state.counters["gbps"] = res.throughput_gbps();
    state.counters["krps"] = res.throughput_rps() / 1e3;
    state.counters["avg_lat_us"] = res.latency.mean() / 1e3;
  }
  state.SetLabel(msvc::BackendName(backend));
}

void RegisterAll() {
  for (msvc::Backend backend :
       {msvc::Backend::kErpc, msvc::Backend::kDmNet, msvc::Backend::kDmCxl}) {
    for (uint32_t bytes : kSizes) {
      benchmark::RegisterBenchmark("fig10/image_pipeline", BM_ImagePipeline)
          ->Args({static_cast<int64_t>(backend), bytes})
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

void PrintPaperTables() {
  Table tput("Fig 10a: image pipeline throughput (Gbps of images)",
             {"size", "eRPC", "DmRPC-net", "DmRPC-CXL", "net-gain",
              "cxl-gain"});
  for (uint32_t bytes : kSizes) {
    const msvc::WorkloadResult& erpc =
        RunPipeline(msvc::Backend::kErpc, bytes);
    const msvc::WorkloadResult& net =
        RunPipeline(msvc::Backend::kDmNet, bytes);
    const msvc::WorkloadResult& cxl =
        RunPipeline(msvc::Backend::kDmCxl, bytes);
    double e = erpc.throughput_gbps();
    tput.AddRow({FormatBytes(bytes), Table::Num(e, 2),
                 Table::Num(net.throughput_gbps(), 2),
                 Table::Num(cxl.throughput_gbps(), 2),
                 Table::Num(e > 0 ? net.throughput_gbps() / e : 0, 1) + "x",
                 Table::Num(e > 0 ? cxl.throughput_gbps() / e : 0, 1) + "x"});
  }
  tput.Print();

  Table lat("Fig 10b: latency at 4KB images (us)",
            {"metric", "eRPC", "DmRPC-net", "DmRPC-CXL"});
  const msvc::WorkloadResult& erpc = RunPipeline(msvc::Backend::kErpc, 4096);
  const msvc::WorkloadResult& net = RunPipeline(msvc::Backend::kDmNet, 4096);
  const msvc::WorkloadResult& cxl = RunPipeline(msvc::Backend::kDmCxl, 4096);
  auto row = [&](const char* name, auto pick) {
    lat.AddRow({name, Table::Num(pick(erpc) / 1e3),
                Table::Num(pick(net) / 1e3), Table::Num(pick(cxl) / 1e3)});
  };
  row("average", [](const msvc::WorkloadResult& r) {
    return static_cast<double>(r.latency.mean());
  });
  row("p99", [](const msvc::WorkloadResult& r) {
    return static_cast<double>(r.latency.p99());
  });
  row("p99.5", [](const msvc::WorkloadResult& r) {
    return static_cast<double>(r.latency.p995());
  });
  row("p99.9", [](const msvc::WorkloadResult& r) {
    return static_cast<double>(r.latency.p999());
  });
  lat.Print();
}

}  // namespace
}  // namespace dmrpc::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  dmrpc::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  dmrpc::bench::PrintPaperTables();
  return 0;
}
