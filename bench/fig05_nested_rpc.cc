// Reproduces Fig. 5 (paper §VI-B): throughput and average latency of a
// nested RPC chain, 4 KiB argument, single client thread, as the number
// of nested calls grows from 1 to 7, for eRPC / DmRPC-net / DmRPC-CXL.
//
// Expected shape: eRPC throughput decays ~1/chain-length because the
// argument crosses the wire at every hop; DmRPC-net and DmRPC-CXL stay
// nearly flat (only the Ref is forwarded) with DmRPC-CXL on top.

#include <benchmark/benchmark.h>

#include <map>

#include "apps/nested_chain.h"
#include "bench/bench_util.h"
#include "common/logging.h"
#include "msvc/cluster.h"
#include "msvc/workload.h"

namespace dmrpc::bench {
namespace {

constexpr uint32_t kArgBytes = 4096;

std::map<std::pair<int, int>, msvc::WorkloadResult>& Cache() {
  static auto* cache =
      new std::map<std::pair<int, int>, msvc::WorkloadResult>();
  return *cache;
}

const msvc::WorkloadResult& RunChain(msvc::Backend backend, int chain_len) {
  auto key = std::make_pair(static_cast<int>(backend), chain_len);
  auto it = Cache().find(key);
  if (it != Cache().end()) return it->second;

  BenchEnv env = BenchEnv::FromEnv();
  sim::Simulation sim(7);
  BenchObs::Arm(&sim);
  msvc::ClusterConfig cfg;
  cfg.backend = backend;
  cfg.num_nodes = 10;
  cfg.dm_frames = 1u << 15;
  msvc::Cluster cluster(&sim, cfg);
  apps::NestedChainApp app(&cluster, chain_len, {1, 2, 3, 4, 5, 6, 7});
  msvc::ServiceEndpoint* client = cluster.AddService("client", 0, 1000);
  Status st = msvc::RunToCompletion(&sim, cluster.InitAll());
  if (!st.ok()) LOG_FATAL << "init: " << st.ToString();
  // One client thread with a full session-slot window (8 outstanding).
  msvc::WorkloadResult res = msvc::RunClosedLoop(
      &sim, app.MakeRequestFn(client, kArgBytes),
      /*workers=*/8, env.Warmup(20 * kMillisecond),
      env.Measure(250 * kMillisecond));
  BenchObs::Record(std::string(msvc::BackendName(backend)) + "_chain" +
                       std::to_string(chain_len),
                   &sim);
  return Cache().emplace(key, std::move(res)).first->second;
}

void BM_NestedChain(benchmark::State& state) {
  auto backend = static_cast<msvc::Backend>(state.range(0));
  int chain_len = static_cast<int>(state.range(1));
  for (auto _ : state) {
    const msvc::WorkloadResult& res = RunChain(backend, chain_len);
    state.counters["krps"] = res.throughput_rps() / 1000.0;
    state.counters["avg_lat_us"] =
        static_cast<double>(res.latency.mean()) / kMicrosecond;
    state.counters["p99_us"] =
        static_cast<double>(res.latency.p99()) / kMicrosecond;
  }
  state.SetLabel(msvc::BackendName(backend));
}

void RegisterAll() {
  for (msvc::Backend backend :
       {msvc::Backend::kErpc, msvc::Backend::kDmNet, msvc::Backend::kDmCxl}) {
    for (int chain = 1; chain <= 7; ++chain) {
      benchmark::RegisterBenchmark("fig05/nested_rpc", BM_NestedChain)
          ->Args({static_cast<int64_t>(backend), chain})
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

void PrintPaperTables() {
  Table tput("Fig 5a: nested RPC throughput (krps), 4KB arg, 1 thread",
             {"chain", "eRPC", "DmRPC-net", "DmRPC-CXL"});
  Table lat("Fig 5b: nested RPC average latency (us)",
            {"chain", "eRPC", "DmRPC-net", "DmRPC-CXL"});
  for (int chain = 1; chain <= 7; ++chain) {
    const msvc::WorkloadResult& erpc = RunChain(msvc::Backend::kErpc, chain);
    const msvc::WorkloadResult& net = RunChain(msvc::Backend::kDmNet, chain);
    const msvc::WorkloadResult& cxl = RunChain(msvc::Backend::kDmCxl, chain);
    tput.AddRow({Table::Int(chain), Table::Num(erpc.throughput_rps() / 1e3),
                 Table::Num(net.throughput_rps() / 1e3),
                 Table::Num(cxl.throughput_rps() / 1e3)});
    lat.AddRow({Table::Int(chain), Table::Num(erpc.latency.mean() / 1e3),
                Table::Num(net.latency.mean() / 1e3),
                Table::Num(cxl.latency.mean() / 1e3)});
  }
  tput.Print();
  lat.Print();
}

}  // namespace
}  // namespace dmrpc::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  dmrpc::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  dmrpc::bench::PrintPaperTables();
  return 0;
}
