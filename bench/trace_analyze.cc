// Command-line front end of obs::TraceAnalysis.
//
// Usage: trace_analyze [--check] [--csv] <trace.jsonl>...
//
// Reads one or more JSONL trace dumps (the .trace.jsonl sidecars written
// by bench binaries under DMRPC_TRACE_DIR, or Tracer::WriteJsonLines
// output) and prints the span-tree well-formedness summary plus the
// critical-path latency breakdown for each file.
//
// With --check the tool exits nonzero unless every dump is structurally
// sound: no dropped records, every begun span closed, every span's
// parent present in the same trace, exactly one root per trace, child
// intervals nested inside their parents, and every per-request breakdown
// summing exactly to that request's end-to-end latency. CI runs this
// over the fig05 traces on every push.
//
// With --csv the human-readable report is replaced by one CSV table on
// stdout -- the BreakdownAggregate rows (group x layer, with the group's
// request count, latency quantiles, and the layer's critical-path time),
// ready for a spreadsheet or pandas:
//
//   file,group,layer,requests,p50_ns,p95_ns,p99_ns,max_ns,layer_ns

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "obs/trace_analysis.h"

namespace {

/// One CSV row per (group, layer): the group's aggregate quantiles repeat
/// on every row of the group, so each row is self-contained.
void PrintCsv(const std::string& path,
              const dmrpc::obs::TraceAnalysis& analysis) {
  auto aggregates = dmrpc::obs::TraceAnalysis::Aggregate(analysis.Breakdowns());
  for (const auto& [group, agg] : aggregates) {
    if (agg.requests == 0) continue;
    for (const auto& [layer, ns] : agg.by_layer) {
      std::printf("%s,%s,%s,%zu,%lld,%lld,%lld,%lld,%lld\n", path.c_str(),
                  group.c_str(), layer.c_str(), agg.requests,
                  static_cast<long long>(agg.p50),
                  static_cast<long long>(agg.p95),
                  static_cast<long long>(agg.p99),
                  static_cast<long long>(agg.max), static_cast<long long>(ns));
    }
  }
}

int AnalyzeFile(const std::string& path, bool check, bool csv) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "trace_analyze: cannot open %s\n", path.c_str());
    return 2;
  }
  dmrpc::obs::TraceAnalysis analysis;
  std::string error;
  if (!analysis.ParseJsonLines(in, &error)) {
    std::fprintf(stderr, "trace_analyze: %s: parse error: %s\n", path.c_str(),
                 error.c_str());
    return 2;
  }
  analysis.Build();
  if (csv) {
    PrintCsv(path, analysis);
  } else {
    std::printf("==== %s ====\n%s", path.c_str(),
                analysis.TextReport().c_str());
  }

  int rc = 0;
  if (check) {
    dmrpc::obs::WellFormedness wf = analysis.Check();
    if (!wf.ok()) {
      std::fprintf(stderr, "trace_analyze: %s: span forest not well-formed\n",
                   path.c_str());
      rc = 1;
    }
    // The accounting invariant behind every number in the report: the
    // per-layer critical-path times of a request partition its root
    // span, so they must sum to the end-to-end latency exactly.
    for (const dmrpc::obs::RequestBreakdown& bd : analysis.Breakdowns()) {
      dmrpc::TimeNs sum = 0;
      for (const auto& [cat, ns] : bd.by_layer) sum += ns;
      dmrpc::TimeNs hop_sum = 0;
      for (const auto& [track, ns] : bd.by_hop) hop_sum += ns;
      if (sum != bd.latency || hop_sum != bd.latency) {
        std::fprintf(stderr,
                     "trace_analyze: %s: trace %llu breakdown sums "
                     "(layer=%lld, hop=%lld) != latency %lld\n",
                     path.c_str(),
                     static_cast<unsigned long long>(bd.trace_id),
                     static_cast<long long>(sum),
                     static_cast<long long>(hop_sum),
                     static_cast<long long>(bd.latency));
        rc = 1;
      }
    }
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  bool check = false;
  bool csv = false;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strcmp(argv[i], "--csv") == 0) {
      csv = true;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf("usage: trace_analyze [--check] [--csv] <trace.jsonl>...\n");
      return 0;
    } else {
      files.push_back(argv[i]);
    }
  }
  if (files.empty()) {
    std::fprintf(stderr,
                 "usage: trace_analyze [--check] [--csv] <trace.jsonl>...\n");
    return 2;
  }
  int rc = 0;
  if (csv) {
    std::printf("file,group,layer,requests,p50_ns,p95_ns,p99_ns,max_ns,"
                "layer_ns\n");
  }
  for (const std::string& f : files) {
    int file_rc = AnalyzeFile(f, check, csv);
    if (file_rc > rc) rc = file_rc;
  }
  if (check && rc == 0 && !csv) {
    std::printf("trace_analyze: all %zu file(s) well-formed\n", files.size());
  }
  return rc;
}
