// Wall-clock microbenchmark suite for the simulation engine hot paths.
//
// Unlike the fig*/abl* benches (which reproduce paper figures in virtual
// time), this suite measures how fast the simulator itself executes on the
// host: events per wall-clock second across three workloads that stress the
// scheduler, the packet path, and the full RPC stack:
//
//   event_churn        timers + callback chains, no network
//   packet_forwarding  raw NIC -> switch -> NIC traffic, no RPC
//   rpc_echo_storm     concurrent small-message RPC echo calls
//   rpc_large_transfer multi-fragment 256 KiB RPC echoes (message path)
//
// Each scenario runs a fixed, seeded virtual-time workload, so its virtual
// results (executed event count, full metrics JSON) are bit-reproducible;
// the FNV-1a hash of the metrics dump is recorded to prove that engine
// optimizations never change simulated behavior. Results are written to a
// BENCH_simcore.json sidecar (override the path with DMRPC_SIMCORE_JSON)
// together with the pre-overhaul baseline, establishing the repo's
// wall-clock perf trajectory.
//
// Usage: bench_simcore [--smoke]   (smoke = ~10x shorter, for CI)

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/units.h"
#include "net/config.h"
#include "net/fabric.h"
#include "net/topology.h"
#include "rpc/rpc.h"
#include "sim/channel.h"
#include "sim/simulation.h"
#include "sim/task.h"

namespace dmrpc::bench {
namespace {

constexpr uint64_t kSeed = 42;

/// When set, scenarios arm the event tracer before running. The harness
/// runs every scenario a second time with this on and requires the
/// executed-event count and metrics fingerprint to match the untraced
/// run exactly: recording spans must never perturb simulated behavior.
bool g_trace_pass = false;

void MaybeArmTracer(sim::Simulation* sim) {
  if (!g_trace_pass) return;
  sim->tracer().set_enabled(true);
  // High enough that no scenario sheds records: a nonzero dropped()
  // count would fold obs.trace_dropped into the metrics dump and fail
  // the fingerprint comparison for the wrong reason.
  sim->tracer().set_limit(size_t{1} << 24);
}

/// FNV-1a over the metrics JSON: a compact determinism fingerprint.
uint64_t Fnv64(const std::string& s) {
  uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

struct RunResult {
  uint64_t events = 0;
  double wall_ms = 0.0;
  uint64_t metrics_fnv = 0;

  double events_per_sec() const {
    return wall_ms > 0.0 ? events / (wall_ms / 1e3) : 0.0;
  }
};

/// Baseline numbers recorded on the pre-overhaul engine (commit 92ae1b5:
/// std::function events in a binary std::priority_queue, std::vector packet
/// payloads), Release -O2. wall_ms was measured with baseline and current
/// binaries run back-to-back in alternation on the same host (averaged
/// over four interleaved pairs) so both sides see the same machine
/// conditions; it is only meaningful relative to a fresh run on that host.
/// metrics_fnv is machine-independent and must match exactly.
struct BaselineEntry {
  const char* scenario;
  RunResult full;
  RunResult smoke;
};

constexpr uint64_t kNoBaseline = 0;

BaselineEntry kBaseline[] = {
    // {scenario, {events, wall_ms, metrics_fnv}, {events, wall_ms, fnv}}
    //
    // All four rows' fingerprints were re-recorded when gauges grew a
    // high-watermark (the dump became {"value":V,"max":M}) and the
    // fabric/rpc/dm layers gained timeline instrumentation (eager
    // net.drop_reason.* registration, net.fabric.port_enqueued,
    // rpc.in_flight, dm.fetch_refs/release_refs/peer_reclaims): every
    // dump's byte stream shifted, but every scenario's executed-event
    // count stayed exactly the same, pinning the drift to the dump
    // format rather than the event schedule.
    {"event_churn",
     {3479858, 404.33, 0x971f545e4e811400ULL},
     {347993, 45.23, 0xbb5e55b37505f28aULL}},
    {"packet_forwarding",
     {1279944, 95.82, 0xc772be9579f89b22ULL},
     {127944, 11.62, 0xaa366358db77d3a3ULL}},
    // Both RPC rows' fingerprints were re-recorded when the packet
    // header grew trace context (trace_id + parent span + flags,
    // kWireBytes 22 -> 39): larger headers change serialization times,
    // which shifts the event schedule (rpc_large_transfer) and the
    // metrics dump (both). event_churn and packet_forwarding bypass
    // rpc::wire and kept their original fingerprints, pinning the
    // drift to the header change.
    //
    // The RPC rows' wall_ms was re-measured again when the engine grew
    // logical-process support: the pre-overhaul hybrid binary no longer
    // builds against the current APIs, so their baseline binary is now
    // the last pre-LP commit (bit-identical fingerprints, same
    // workload), run interleaved with the current binary on the same
    // host (averaged over four alternating pairs). For these two rows
    // "speedup" therefore reads as the sequential-path cost of the
    // LP-capable engine (atomic slab refcounts, pool locking, worker
    // context checks); the parallel payoff is the thread_scaling
    // section, which needs real cores to show up.
    {"rpc_echo_storm",
     {2097230, 192.44, 0x62d8aa580cdf3b27ULL},
     {209658, 19.74, 0xc6266cb0723b9295ULL}},
    {"rpc_large_transfer",
     {624538, 47.71, 0x08bbd6e37a5f14fbULL},
     {63854, 5.85, 0xafd05165065f1c58ULL}},
};

const BaselineEntry* FindBaseline(const std::string& scenario) {
  for (const BaselineEntry& e : kBaseline) {
    if (scenario == e.scenario) return &e;
  }
  return nullptr;
}

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double ElapsedMs() const {
    auto d = std::chrono::steady_clock::now() - start_;
    return std::chrono::duration<double, std::milli>(d).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

// ---------------------------------------------------------------------------
// Scenario 1: event churn (scheduler-only hot loop)
// ---------------------------------------------------------------------------

sim::Task<> TimerLoop(sim::Simulation* sim, TimeNs period, TimeNs deadline) {
  while (sim->Now() + period <= deadline) {
    co_await sim::Delay(period);
  }
}

/// A self-rescheduling callback chain: one live event per chain at any
/// instant, stressing the push/pop path with small inlined callbacks.
struct CallbackChain {
  sim::Simulation* sim;
  TimeNs period;
  TimeNs deadline;
  void Step() {
    if (sim->Now() + period > deadline) return;
    sim->After(period, [this] { Step(); });
  }
};

RunResult RunEventChurn(bool smoke) {
  const TimeNs window = (smoke ? 2 : 20) * kMillisecond;
  sim::Simulation sim(kSeed);
  MaybeArmTracer(&sim);
  std::vector<CallbackChain> chains;
  chains.reserve(64);
  for (int i = 0; i < 64; ++i) {
    // Periods 100..1703 ns, co-prime-ish so heap order keeps churning.
    sim.Spawn(TimerLoop(&sim, 100 + 37 * i, window));
    chains.push_back(CallbackChain{&sim, 113 + 41 * i, window});
  }
  for (CallbackChain& c : chains) c.Step();

  WallTimer wall;
  sim.RunUntil(window);
  RunResult res;
  res.wall_ms = wall.ElapsedMs();
  res.events = sim.executed_events();
  res.metrics_fnv = Fnv64(sim.DumpMetricsJson());
  return res;
}

// ---------------------------------------------------------------------------
// Scenario 2: packet forwarding (NIC -> switch -> NIC, no RPC)
// ---------------------------------------------------------------------------

sim::Task<> PacketSender(sim::Simulation* sim, net::Fabric* fabric,
                         net::NodeId src, net::NodeId dst, uint32_t bytes,
                         TimeNs gap, TimeNs deadline) {
  while (sim->Now() + gap <= deadline) {
    co_await sim::Delay(gap);
    net::Packet pkt;
    pkt.src = src;
    pkt.dst = dst;
    pkt.src_port = 9;
    pkt.dst_port = 80;
    pkt.payload.assign(bytes, 0xab);
    fabric->nic(src)->Send(std::move(pkt));
  }
}

sim::Task<> PacketDrain(sim::Channel<net::Packet>* inbox, uint64_t* bytes) {
  for (;;) {
    net::Packet pkt = co_await inbox->Pop();
    *bytes += pkt.payload_size();
  }
}

RunResult RunPacketForwarding(bool smoke) {
  const TimeNs window = (smoke ? 1 : 10) * kMillisecond;
  constexpr uint32_t kNodes = 8;
  sim::Simulation sim(kSeed);
  MaybeArmTracer(&sim);
  net::NetworkConfig cfg;
  net::Fabric fabric(&sim, cfg, kNodes);
  std::vector<std::unique_ptr<sim::Channel<net::Packet>>> inboxes;
  uint64_t drained_bytes = 0;
  for (uint32_t n = 0; n < kNodes; ++n) {
    inboxes.push_back(std::make_unique<sim::Channel<net::Packet>>());
    fabric.nic(n)->BindPort(80, inboxes.back().get());
    sim.Spawn(PacketDrain(inboxes.back().get(), &drained_bytes));
  }
  for (uint32_t n = 0; n < kNodes; ++n) {
    sim.Spawn(PacketSender(&sim, &fabric, n, (n + 1) % kNodes,
                           /*bytes=*/1000, /*gap=*/500, window));
  }

  WallTimer wall;
  sim.RunUntil(window);
  RunResult res;
  res.wall_ms = wall.ElapsedMs();
  res.events = sim.executed_events();
  res.metrics_fnv = Fnv64(sim.DumpMetricsJson());
  return res;
}

// ---------------------------------------------------------------------------
// Scenario 3: RPC echo storm (full stack)
// ---------------------------------------------------------------------------

sim::Task<rpc::MsgBuffer> EchoHandler(rpc::ReqContext, rpc::MsgBuffer req) {
  co_return req;
}

sim::Task<> EchoWorker(sim::Simulation* sim, rpc::Rpc* client,
                       rpc::SessionId session, TimeNs deadline,
                       uint64_t* calls) {
  while (sim->Now() < deadline) {
    rpc::MsgBuffer req;
    for (int i = 0; i < 8; ++i) req.Append<uint64_t>(i);  // 64 B
    auto resp = co_await client->Call(session, 1, std::move(req));
    DMRPC_CHECK(resp.ok());
    ++*calls;
  }
}

sim::Task<> EchoClient(sim::Simulation* sim, rpc::Rpc* client,
                       net::NodeId server, TimeNs deadline, uint64_t* calls) {
  auto session = co_await client->Connect(server, 1);
  DMRPC_CHECK(session.ok());
  for (int w = 0; w < 4; ++w) {
    sim->Spawn(EchoWorker(sim, client, *session, deadline, calls));
  }
}

RunResult RunRpcEchoStorm(bool smoke) {
  const TimeNs window = (smoke ? 2 : 20) * kMillisecond;
  constexpr uint32_t kClients = 4;
  sim::Simulation sim(kSeed);
  MaybeArmTracer(&sim);
  net::NetworkConfig cfg;
  net::Fabric fabric(&sim, cfg, kClients + 1);
  rpc::Rpc server(&fabric, 0, 1);
  server.RegisterHandler(1, EchoHandler);
  std::vector<std::unique_ptr<rpc::Rpc>> clients;
  uint64_t calls = 0;
  for (uint32_t c = 0; c < kClients; ++c) {
    clients.push_back(std::make_unique<rpc::Rpc>(&fabric, c + 1, 1));
    sim.Spawn(EchoClient(&sim, clients.back().get(), 0, window, &calls));
  }

  WallTimer wall;
  sim.RunUntil(window + 1 * kMillisecond);  // drain in-flight tails
  RunResult res;
  res.wall_ms = wall.ElapsedMs();
  res.events = sim.executed_events();
  res.metrics_fnv = Fnv64(sim.DumpMetricsJson());
  DMRPC_CHECK_GT(calls, 0u);
  return res;
}

// ---------------------------------------------------------------------------
// Scenario 4: large transfers (the scatter-gather message path)
// ---------------------------------------------------------------------------
//
// 256 KiB echoes fragment into ~178 packets each way, so host time is
// dominated by serialization, fragmentation, and reassembly -- the path
// the slice-chain MsgBuffer made copy-free. This scenario deliberately
// uses only the MsgBuffer API surface shared by the contiguous and
// chain implementations, so the identical source measures both.

sim::Task<> LargeTransferWorker(sim::Simulation* sim, rpc::Rpc* client,
                                rpc::SessionId session,
                                const std::vector<uint8_t>* blob,
                                TimeNs deadline, uint64_t* calls) {
  while (sim->Now() < deadline) {
    rpc::MsgBuffer req;
    req.AppendBytes(blob->data(), blob->size());
    auto resp = co_await client->Call(session, 1, std::move(req));
    DMRPC_CHECK(resp.ok());
    DMRPC_CHECK_EQ(resp->size(), blob->size());
    ++*calls;
  }
}

sim::Task<> LargeTransferClient(sim::Simulation* sim, rpc::Rpc* client,
                                net::NodeId server,
                                const std::vector<uint8_t>* blob,
                                TimeNs deadline, uint64_t* calls) {
  auto session = co_await client->Connect(server, 1);
  DMRPC_CHECK(session.ok());
  for (int w = 0; w < 2; ++w) {
    sim->Spawn(LargeTransferWorker(sim, client, *session, blob, deadline,
                                   calls));
  }
}

RunResult RunRpcLargeTransfer(bool smoke) {
  const TimeNs window = (smoke ? 2 : 20) * kMillisecond;
  constexpr uint32_t kClients = 2;
  constexpr size_t kBlobBytes = 256 * 1024;
  sim::Simulation sim(kSeed);
  MaybeArmTracer(&sim);
  net::NetworkConfig cfg;
  net::Fabric fabric(&sim, cfg, kClients + 1);
  rpc::Rpc server(&fabric, 0, 1);
  server.RegisterHandler(1, EchoHandler);
  std::vector<uint8_t> blob(kBlobBytes);
  for (size_t i = 0; i < blob.size(); ++i) {
    blob[i] = static_cast<uint8_t>(i * 131 + 7);
  }
  std::vector<std::unique_ptr<rpc::Rpc>> clients;
  uint64_t calls = 0;
  for (uint32_t c = 0; c < kClients; ++c) {
    clients.push_back(std::make_unique<rpc::Rpc>(&fabric, c + 1, 1));
    sim.Spawn(LargeTransferClient(&sim, clients.back().get(), 0, &blob,
                                  window, &calls));
  }

  WallTimer wall;
  sim.RunUntil(window + 2 * kMillisecond);  // drain in-flight tails
  RunResult res;
  res.wall_ms = wall.ElapsedMs();
  res.events = sim.executed_events();
  res.metrics_fnv = Fnv64(sim.DumpMetricsJson());
  DMRPC_CHECK_GT(calls, 0u);
  // The zero-copy gate: after the producer writes into the request, no
  // payload byte may be memcpy'd on the message path. The contiguous
  // baseline predates the counter, so CounterValue returns 0 there too
  // and this check compiles and passes against both implementations.
  DMRPC_CHECK_EQ(sim.metrics().CounterValue("rpc.bytes_copied"), 0u);
  return res;
}

// ---------------------------------------------------------------------------
// Scenario 5: thread scaling (the LP engine on the 192-host scale topology)
// ---------------------------------------------------------------------------
//
// The parallel engine's merit scenario: the bench/scale Clos datacenter
// shape (192 hosts, 4 spines x 8 leaves) whose switch groups run as
// logical processes. Cross-leaf echo storms keep every leaf LP's port
// pumps busy while the host LP runs the RPC stack. The same seeded
// workload runs on the sequential engine and at 1/2/4/8 executors; all
// five must produce bit-identical event counts and metrics dumps
// (windowed execution + barrier replay), while wall_ms records the
// host-dependent scaling curve. Speedup requires real cores: the JSON
// records host_cores next to the numbers so a 1-core CI box reporting
// ~1x is read as the hardware ceiling, not an engine regression.

RunResult RunThreadScalingOnce(bool smoke, int workers) {
  const TimeNs window = (smoke ? 1 : 4) * kMillisecond;
  sim::SimConfig scfg;
  scfg.worker_threads = workers;
  sim::Simulation sim(kSeed, scfg);
  net::NetworkConfig cfg;  // lossless: rng-free switch LPs stay parallel
  net::TopologyConfig topo = net::TopologyConfig::Clos(192, 4, 8, 256);
  const uint32_t hpl = topo.HostsPerLeaf();
  net::Fabric fabric(&sim, cfg, topo);
  rpc::Rpc* servers[8];
  std::vector<std::unique_ptr<rpc::Rpc>> rpcs;
  uint64_t calls = 0;
  for (uint32_t leaf = 0; leaf < topo.num_leaves; ++leaf) {
    rpcs.push_back(std::make_unique<rpc::Rpc>(&fabric, leaf * hpl, 1));
    servers[leaf] = rpcs.back().get();
    servers[leaf]->RegisterHandler(1, EchoHandler);
  }
  for (uint32_t leaf = 0; leaf < topo.num_leaves; ++leaf) {
    // Clients call the *next* leaf's server, so every RPC crosses a
    // spine and exercises the cross-LP staging path.
    net::NodeId target = ((leaf + 1) % topo.num_leaves) * hpl;
    for (uint32_t c = 1; c <= 4; ++c) {
      rpcs.push_back(std::make_unique<rpc::Rpc>(&fabric, leaf * hpl + c, 1));
      sim.Spawn(EchoClient(&sim, rpcs.back().get(), target, window, &calls));
    }
  }

  WallTimer wall;
  sim.RunUntil(window + 1 * kMillisecond);  // drain in-flight tails
  RunResult res;
  res.wall_ms = wall.ElapsedMs();
  res.events = sim.executed_events();
  res.metrics_fnv = Fnv64(sim.DumpMetricsJson());
  DMRPC_CHECK_GT(calls, 0u);
  return res;
}

// ---------------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------------

struct Scenario {
  const char* name;
  RunResult (*run)(bool smoke);
};

const Scenario kScenarios[] = {
    {"event_churn", RunEventChurn},
    {"packet_forwarding", RunPacketForwarding},
    {"rpc_echo_storm", RunRpcEchoStorm},
    {"rpc_large_transfer", RunRpcLargeTransfer},
};

std::string JsonRun(const RunResult& r) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"events\": %llu, \"wall_ms\": %.3f, "
                "\"events_per_sec\": %.0f, \"metrics_fnv64\": \"%016llx\"}",
                static_cast<unsigned long long>(r.events), r.wall_ms,
                r.events_per_sec(),
                static_cast<unsigned long long>(r.metrics_fnv));
  return buf;
}

int Main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  if (const char* env = std::getenv("DMRPC_SIMCORE_SMOKE")) {
    if (env[0] != '\0' && env[0] != '0') smoke = true;
  }
  const char* json_path = std::getenv("DMRPC_SIMCORE_JSON");
  if (json_path == nullptr) json_path = "BENCH_simcore.json";

  std::printf("simcore wall-clock suite (%s mode)\n",
              smoke ? "smoke" : "full");
  std::printf("%-20s %12s %10s %14s %10s %8s %8s\n", "scenario", "events",
              "wall_ms", "events/sec", "speedup", "determ", "traceok");

  std::string runs_json, base_json, speedup_json, trace_json;
  bool all_deterministic = true;
  bool all_zero_perturb = true;
  for (const Scenario& sc : kScenarios) {
    RunResult r = sc.run(smoke);
    // Zero-perturbation pass: the same scenario with span recording on
    // must execute the identical event sequence and dump byte-identical
    // metrics. Untimed -- only the virtual-time fingerprints matter.
    g_trace_pass = true;
    RunResult traced = sc.run(smoke);
    g_trace_pass = false;
    bool zero_perturb =
        traced.events == r.events && traced.metrics_fnv == r.metrics_fnv;
    if (!zero_perturb) all_zero_perturb = false;
    const BaselineEntry* be = FindBaseline(sc.name);
    const RunResult* base = nullptr;
    if (be != nullptr) base = smoke ? &be->smoke : &be->full;
    double speedup = 0.0;
    const char* determ = "n/a";
    if (base != nullptr && base->metrics_fnv != kNoBaseline) {
      if (base->wall_ms > 0.0 && r.wall_ms > 0.0) {
        speedup = base->wall_ms / r.wall_ms;
      }
      bool same = base->metrics_fnv == r.metrics_fnv &&
                  base->events == r.events;
      determ = same ? "ok" : "DIFF";
      if (!same) all_deterministic = false;
    }
    std::printf("%-20s %12llu %10.2f %14.0f %9.2fx %8s %8s\n", sc.name,
                static_cast<unsigned long long>(r.events), r.wall_ms,
                r.events_per_sec(), speedup, determ,
                zero_perturb ? "ok" : "DIFF");

    if (!runs_json.empty()) {
      runs_json += ",\n    ";
      base_json += ",\n    ";
      speedup_json += ", ";
      trace_json += ", ";
    }
    runs_json += std::string("\"") + sc.name + "\": " + JsonRun(r);
    base_json += std::string("\"") + sc.name + "\": " +
                 (base != nullptr ? JsonRun(*base) : "null");
    char sbuf[64];
    std::snprintf(sbuf, sizeof(sbuf), "\"%s\": %.2f", sc.name, speedup);
    speedup_json += sbuf;
    trace_json += std::string("\"") + sc.name +
                  "\": " + (zero_perturb ? "true" : "false");
  }

  // Thread-scaling sweep: the sequential engine plus 1/2/4/8 executors
  // on the 192-host Clos scenario. Bit-identity across all five runs is
  // the determinism gate; wall_ms is the host-dependent payoff curve.
  struct ThreadPoint {
    const char* label;
    int workers;
  };
  const ThreadPoint kThreadPoints[] = {
      {"seq", 0}, {"w1", 1}, {"w2", 2}, {"w4", 4}, {"w8", 8}};
  std::string scaling_json;
  bool scaling_identical = true;
  RunResult scaling_ref, scaling_w1, scaling_w8;
  for (const ThreadPoint& tp : kThreadPoints) {
    RunResult r = RunThreadScalingOnce(smoke, tp.workers);
    if (tp.workers == 0) scaling_ref = r;
    if (tp.workers == 1) scaling_w1 = r;
    if (tp.workers == 8) scaling_w8 = r;
    bool same = r.events == scaling_ref.events &&
                r.metrics_fnv == scaling_ref.metrics_fnv;
    if (!same) scaling_identical = false;
    char name[64];
    std::snprintf(name, sizeof(name), "thread_scaling/%s", tp.label);
    std::printf("%-20s %12llu %10.2f %14.0f %9s %8s %8s\n", name,
                static_cast<unsigned long long>(r.events), r.wall_ms,
                r.events_per_sec(), "", same ? "ok" : "DIFF", "");
    if (!scaling_json.empty()) scaling_json += ",\n      ";
    scaling_json += std::string("\"") + tp.label + "\": " + JsonRun(r);
  }
  double scaling_speedup = scaling_w8.wall_ms > 0.0
                               ? scaling_w1.wall_ms / scaling_w8.wall_ms
                               : 0.0;
  std::printf("thread_scaling: w8 vs w1 %.2fx on %u host core%s, "
              "bit-identical %s\n",
              scaling_speedup, std::thread::hardware_concurrency(),
              std::thread::hardware_concurrency() == 1 ? "" : "s",
              scaling_identical ? "yes" : "NO");

  std::ofstream out(json_path);
  char scaling_head[160];
  std::snprintf(scaling_head, sizeof(scaling_head),
                "\"topology\": \"clos_192h_4s_8l_q256\", \"host_cores\": %u",
                std::thread::hardware_concurrency());
  char scaling_tail[64];
  std::snprintf(scaling_tail, sizeof(scaling_tail),
                "\"speedup_w8_vs_w1\": %.2f", scaling_speedup);
  out << "{\n  \"bench\": \"simcore\",\n  \"mode\": \""
      << (smoke ? "smoke" : "full") << "\",\n  \"runs\": {\n    "
      << runs_json << "\n  },\n  \"baseline\": {\n    " << base_json
      << "\n  },\n  \"speedup_vs_baseline\": { " << speedup_json
      << " },\n  \"thread_scaling\": {\n    " << scaling_head
      << ",\n    \"runs\": {\n      " << scaling_json
      << "\n    },\n    \"bit_identical\": "
      << (scaling_identical ? "true" : "false") << ",\n    " << scaling_tail
      << "\n  },\n  \"trace_zero_perturbation\": { " << trace_json
      << " },\n  \"deterministic_vs_baseline\": "
      << (all_deterministic ? "true" : "false")
      << ",\n  \"tracing_zero_perturbation\": "
      << (all_zero_perturb ? "true" : "false") << "\n}\n";
  out.close();
  std::printf("wrote %s\n", json_path);
  return (all_deterministic && scaling_identical) ? 0 : 1;
}

}  // namespace
}  // namespace dmrpc::bench

int main(int argc, char** argv) { return dmrpc::bench::Main(argc, argv); }
