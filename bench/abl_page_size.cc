// Ablation: copy-on-write page granularity (paper §V-A notes the page
// size is changeable; 4 KiB is their default).
//
// A consumer maps a shared 64 KiB region and writes a small sparse
// fraction of it. Small pages copy less data per COW fault (less write
// amplification) but cost more refcount/PTE operations per region;
// large pages invert the trade. The bench reports DM memory traffic per
// request and the achieved rate across page sizes.

#include <benchmark/benchmark.h>

#include <map>
#include <vector>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "core/dmrpc.h"
#include "msvc/cluster.h"
#include "msvc/workload.h"

namespace dmrpc::bench {
namespace {

constexpr uint32_t kRegionBytes = 65536;
constexpr uint32_t kPageSizes[] = {1024, 4096, 16384, 65536};

struct Outcome {
  double krps = 0.0;
  double traffic_per_req = 0.0;
  double cow_per_req = 0.0;
};

std::map<uint32_t, Outcome>& Cache() {
  static auto* cache = new std::map<uint32_t, Outcome>();
  return *cache;
}

const Outcome& RunOne(uint32_t page_size) {
  auto it = Cache().find(page_size);
  if (it != Cache().end()) return it->second;

  BenchEnv env = BenchEnv::FromEnv();
  sim::Simulation sim(22);
  BenchObs::Arm(&sim);
  msvc::ClusterConfig cfg;
  cfg.backend = msvc::Backend::kDmNet;
  cfg.num_nodes = 5;
  cfg.page_size = page_size;
  cfg.dm_frames = (64u << 20) / page_size;  // 64 MiB pool
  msvc::Cluster cluster(&sim, cfg);
  msvc::ServiceEndpoint* producer = cluster.AddService("producer", 0, 1000);
  msvc::ServiceEndpoint* consumer = cluster.AddService("consumer", 1, 1000);

  constexpr rpc::ReqType kShare = 61;
  consumer->RegisterHandler(
      kShare, [consumer](rpc::ReqContext,
                         rpc::MsgBuffer req) -> sim::Task<rpc::MsgBuffer> {
        core::Payload payload = core::Payload::DecodeFrom(&req);
        rpc::MsgBuffer resp;
        auto region = co_await consumer->dmrpc()->Map(payload);
        if (!region.ok()) {
          resp.Append<uint8_t>(1);
          co_return resp;
        }
        // Sparse writes: 64 bytes at the head of each 16 KiB stripe
        // (4 stripes in 64 KiB), i.e. 256 dirty bytes per request.
        std::vector<uint8_t> dirty(64, 0x5a);
        for (uint32_t off = 0; off < kRegionBytes; off += 16384) {
          (void)co_await region->Write(off, dirty.data(), dirty.size());
        }
        (void)co_await region->Close();
        consumer->Detach(consumer->dmrpc()->Release(payload));
        resp.Append<uint8_t>(0);
        co_return resp;
      });

  Status st = msvc::RunToCompletion(&sim, cluster.InitAll());
  if (!st.ok()) LOG_FATAL << "init: " << st.ToString();

  std::vector<uint8_t> block(kRegionBytes, 0x42);
  msvc::RequestFn fn = [&]() -> sim::Task<StatusOr<uint64_t>> {
    auto payload = co_await producer->dmrpc()->MakePayload(block);
    if (!payload.ok()) co_return payload.status();
    rpc::MsgBuffer req;
    payload->EncodeTo(&req);
    auto resp = co_await producer->CallService("consumer", kShare,
                                               std::move(req));
    if (!resp.ok()) co_return resp.status();
    co_return uint64_t{kRegionBytes};
  };

  uint64_t traffic = 0;
  uint64_t cows = 0;
  uint64_t reqs_base = 0;
  msvc::WindowHooks hooks;
  hooks.on_measure_start = [&] {
    cluster.dm_server(0)->ResetStats();
    cluster.dm_server(1)->ResetStats();
  };
  hooks.on_measure_end = [&] {
    traffic = cluster.dm_server(0)->memory_meter().total_bytes() +
              cluster.dm_server(1)->memory_meter().total_bytes();
    cows = cluster.dm_server(0)->stats().cow_copies +
           cluster.dm_server(1)->stats().cow_copies;
  };
  (void)reqs_base;
  msvc::WorkloadResult res = msvc::RunClosedLoop(
      &sim, fn, /*workers=*/4, env.Warmup(10 * kMillisecond),
      env.Measure(200 * kMillisecond), hooks);
  Outcome out;
  out.krps = res.throughput_rps() / 1e3;
  if (res.completed > 0) {
    out.traffic_per_req = static_cast<double>(traffic) / res.completed;
    out.cow_per_req = static_cast<double>(cows) / res.completed;
  }
  BenchObs::Record("page" + std::to_string(page_size), &sim);
  return Cache().emplace(page_size, out).first->second;
}

void BM_PageSize(benchmark::State& state) {
  uint32_t page = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    const Outcome& out = RunOne(page);
    state.counters["krps"] = out.krps;
    state.counters["traffic_B"] = out.traffic_per_req;
    state.counters["cow_pages"] = out.cow_per_req;
  }
}

void RegisterAll() {
  for (uint32_t page : kPageSizes) {
    benchmark::RegisterBenchmark("abl/page_size", BM_PageSize)
        ->Arg(page)
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

void PrintPaperTables() {
  Table table(
      "Ablation: COW page size (64KB region, 4x64B sparse writes)",
      {"page", "krps", "DM-traffic/req", "COW-copies/req"});
  for (uint32_t page : kPageSizes) {
    const Outcome& out = RunOne(page);
    table.AddRow({FormatBytes(page), Table::Num(out.krps),
                  FormatBytes(static_cast<uint64_t>(out.traffic_per_req)),
                  Table::Num(out.cow_per_req, 2)});
  }
  table.Print();
}

}  // namespace
}  // namespace dmrpc::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  dmrpc::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  dmrpc::bench::PrintPaperTables();
  return 0;
}
