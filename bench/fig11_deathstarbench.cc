// Reproduces Fig. 11 (paper §VI-F): the DeathStarBench-style social
// network under the mixed workload (60% read-home-timeline, 30%
// read-user-timeline, 10% compose-post), deployed on three app servers,
// comparing eRPC and DmRPC-net: average, p99, and p99.9 latency as the
// offered request rate grows.
//
// Expected shape: DmRPC-net sustains a substantially higher request rate
// before its latency knee, and has lower latency at every common rate,
// because all requests traverse at least three data-mover services that
// only forward Refs instead of post media.

#include <benchmark/benchmark.h>

#include <map>

#include "apps/socialnet.h"
#include "bench/bench_util.h"
#include "common/logging.h"
#include "msvc/cluster.h"
#include "msvc/workload.h"

namespace dmrpc::bench {
namespace {

std::map<std::pair<int, int>, msvc::WorkloadResult>& Cache() {
  static auto* cache =
      new std::map<std::pair<int, int>, msvc::WorkloadResult>();
  return *cache;
}

const msvc::WorkloadResult& RunSocialNet(msvc::Backend backend,
                                         int rate_krps) {
  auto key = std::make_pair(static_cast<int>(backend), rate_krps);
  auto it = Cache().find(key);
  if (it != Cache().end()) return it->second;

  BenchEnv env = BenchEnv::FromEnv();
  sim::Simulation sim(11);
  BenchObs::Arm(&sim);
  msvc::ClusterConfig cfg;
  cfg.backend = backend;
  cfg.num_nodes = 6;  // 3 app servers + client host + DM hosts
  cfg.dm_frames = 1u << 17;
  msvc::Cluster cluster(&sim, cfg);
  apps::SocialNetApp app(&cluster, {1, 2, 3});
  msvc::ServiceEndpoint* client = cluster.AddService("client", 0, 1000, 4);
  Status st = msvc::RunToCompletion(&sim, cluster.InitAll());
  if (!st.ok()) LOG_FATAL << "init: " << st.ToString();

  msvc::WorkloadResult res = msvc::RunOpenLoop(
      &sim, app.MakeMixedRequestFn(client), rate_krps * 1000.0,
      env.Warmup(100 * kMillisecond), env.Measure(500 * kMillisecond),
      /*max_outstanding=*/50000);
  BenchObs::Record(std::string(msvc::BackendName(backend)) + "_" +
                       std::to_string(rate_krps) + "krps",
                   &sim);
  return Cache().emplace(key, std::move(res)).first->second;
}

constexpr int kRatesKrps[] = {5, 10, 20, 40, 60, 80, 100};

void BM_SocialNet(benchmark::State& state) {
  auto backend = static_cast<msvc::Backend>(state.range(0));
  int rate = static_cast<int>(state.range(1));
  for (auto _ : state) {
    const msvc::WorkloadResult& res = RunSocialNet(backend, rate);
    state.counters["goodput_krps"] = res.throughput_rps() / 1e3;
    state.counters["avg_us"] = res.latency.mean() / 1e3;
    state.counters["p99_us"] = res.latency.p99() / 1e3;
  }
  state.SetLabel(msvc::BackendName(backend));
}

void RegisterAll() {
  for (msvc::Backend backend :
       {msvc::Backend::kErpc, msvc::Backend::kDmNet}) {
    for (int rate : kRatesKrps) {
      benchmark::RegisterBenchmark("fig11/deathstarbench", BM_SocialNet)
          ->Args({static_cast<int64_t>(backend), rate})
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

void PrintPaperTables() {
  Table table(
      "Fig 11: social network latency vs offered rate "
      "(60/30/10 read-home/read-user/compose, us)",
      {"offered-krps", "eRPC-goodput", "eRPC-avg", "eRPC-p99", "eRPC-p999",
       "net-goodput", "net-avg", "net-p99", "net-p999"});
  for (int rate : kRatesKrps) {
    const msvc::WorkloadResult& erpc =
        RunSocialNet(msvc::Backend::kErpc, rate);
    const msvc::WorkloadResult& net =
        RunSocialNet(msvc::Backend::kDmNet, rate);
    table.AddRow({Table::Int(rate),
                  Table::Num(erpc.throughput_rps() / 1e3),
                  Table::Num(erpc.latency.mean() / 1e3),
                  Table::Num(erpc.latency.p99() / 1e3),
                  Table::Num(erpc.latency.p999() / 1e3),
                  Table::Num(net.throughput_rps() / 1e3),
                  Table::Num(net.latency.mean() / 1e3),
                  Table::Num(net.latency.p99() / 1e3),
                  Table::Num(net.latency.p999() / 1e3)});
  }
  table.Print();
}

}  // namespace
}  // namespace dmrpc::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  dmrpc::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  dmrpc::bench::PrintPaperTables();
  return 0;
}
