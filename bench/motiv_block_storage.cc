// Quantifies the paper's §I motivation: "the commodity block storage
// service uses RPC to transfer large data blocks (tens to hundreds of
// KBs)" [28][49], and the write path replicates each block through a
// chain (gateway -> primary -> replica -> replica), so pass-by-value
// moves every block four times across the network. Under DmRPC each hop
// forwards a Ref and *maps* it; the block's bytes cross the network once
// (client -> DM) regardless of replication factor.
//
// Reports write and mixed-workload throughput vs block size per backend.

#include <benchmark/benchmark.h>

#include <map>

#include "apps/block_storage.h"
#include "bench/bench_util.h"
#include "common/logging.h"
#include "msvc/cluster.h"
#include "msvc/workload.h"

namespace dmrpc::bench {
namespace {

struct Outcome {
  double write_krps = 0.0;
  double write_gbps = 0.0;
  double mixed_krps = 0.0;
};

std::map<std::pair<int, uint32_t>, Outcome>& Cache() {
  static auto* cache = new std::map<std::pair<int, uint32_t>, Outcome>();
  return *cache;
}

const Outcome& RunOne(msvc::Backend backend, uint32_t block_bytes) {
  auto key = std::make_pair(static_cast<int>(backend), block_bytes);
  auto it = Cache().find(key);
  if (it != Cache().end()) return it->second;

  BenchEnv env = BenchEnv::FromEnv();
  Outcome out;
  for (int phase = 0; phase < 2; ++phase) {
    sim::Simulation sim(29 + phase);
    BenchObs::Arm(&sim);
    msvc::ClusterConfig cfg;
    cfg.backend = backend;
    cfg.num_nodes = 12;
    cfg.dm_frames = 1u << 16;
    msvc::Cluster cluster(&sim, cfg);
    apps::BlockStorageApp app(&cluster, {1, 2, 3, 4, 5, 6, 7});
    msvc::ServiceEndpoint* client = cluster.AddService("client", 0, 1000, 4);
    Status st = msvc::RunToCompletion(&sim, cluster.InitAll());
    if (!st.ok()) LOG_FATAL << "init: " << st.ToString();
    double write_fraction = phase == 0 ? 1.0 : 0.3;
    msvc::WorkloadResult res = msvc::RunClosedLoop(
        &sim, app.MakeWorkloadFn(client, block_bytes, write_fraction),
        /*workers=*/16, env.Warmup(20 * kMillisecond),
        env.Measure(250 * kMillisecond));
    if (phase == 0) {
      out.write_krps = res.throughput_rps() / 1e3;
      out.write_gbps = res.throughput_gbps();
    } else {
      out.mixed_krps = res.throughput_rps() / 1e3;
    }
    BenchObs::Record(std::string(msvc::BackendName(backend)) + "_" +
                         std::to_string(block_bytes) + "B_" +
                         (phase == 0 ? "writes" : "mixed"),
                     &sim);
  }
  return Cache().emplace(key, out).first->second;
}

constexpr uint32_t kSizes[] = {16384, 65536, 262144};

void BM_BlockStorage(benchmark::State& state) {
  auto backend = static_cast<msvc::Backend>(state.range(0));
  uint32_t bytes = static_cast<uint32_t>(state.range(1));
  for (auto _ : state) {
    const Outcome& out = RunOne(backend, bytes);
    state.counters["write_krps"] = out.write_krps;
    state.counters["write_gbps"] = out.write_gbps;
    state.counters["mixed_krps"] = out.mixed_krps;
  }
  state.SetLabel(msvc::BackendName(backend));
}

void RegisterAll() {
  for (msvc::Backend backend :
       {msvc::Backend::kErpc, msvc::Backend::kDmNet, msvc::Backend::kDmCxl}) {
    for (uint32_t bytes : kSizes) {
      benchmark::RegisterBenchmark("motiv/block_storage", BM_BlockStorage)
          ->Args({static_cast<int64_t>(backend), bytes})
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

void PrintPaperTables() {
  Table writes(
      "Motivation (paper I): replicated block-store write path "
      "(3-deep chain), Gbps of blocks",
      {"block", "eRPC", "DmRPC-net", "DmRPC-CXL", "net-gain", "cxl-gain"});
  Table mixed("Block store, 30% writes / 70% reads (krps)",
              {"block", "eRPC", "DmRPC-net", "DmRPC-CXL"});
  for (uint32_t bytes : kSizes) {
    const Outcome& erpc = RunOne(msvc::Backend::kErpc, bytes);
    const Outcome& net = RunOne(msvc::Backend::kDmNet, bytes);
    const Outcome& cxl = RunOne(msvc::Backend::kDmCxl, bytes);
    writes.AddRow(
        {FormatBytes(bytes), Table::Num(erpc.write_gbps, 2),
         Table::Num(net.write_gbps, 2), Table::Num(cxl.write_gbps, 2),
         Table::Num(erpc.write_gbps > 0 ? net.write_gbps / erpc.write_gbps
                                        : 0,
                    1) +
             "x",
         Table::Num(erpc.write_gbps > 0 ? cxl.write_gbps / erpc.write_gbps
                                        : 0,
                    1) +
             "x"});
    mixed.AddRow({FormatBytes(bytes), Table::Num(erpc.mixed_krps, 1),
                  Table::Num(net.mixed_krps, 1),
                  Table::Num(cxl.mixed_krps, 1)});
  }
  writes.Print();
  mixed.Print();
}

}  // namespace
}  // namespace dmrpc::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  dmrpc::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  dmrpc::bench::PrintPaperTables();
  return 0;
}
